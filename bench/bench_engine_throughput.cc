// BENCH_ENGINE: serving-layer throughput. Measures queries/second
// through QueryEngine::Submit for each planner family, separating the
// cold path (first submit pays planner + transform + spanner/matrix
// construction) from the warm path (plan-slot hit; only the release
// itself). Warm throughput is measured on the handle-carrying request
// path (zero string construction / map hashing per submit) and, for
// comparison, on the string-id path; sessions are opened and handles
// resolved BEFORE the stopwatch starts, so qps measures submits only.
//
// Sections:
//   1. per-policy cold ms + warm qps at 1 / 4 / 16 threads
//   2. grouped SubmitBatch vs a Submit loop, plus the
//      parallel-composition (disjoint-domain) charge accounting
//   3. θ>=2 grid: single-pass scatter histogram release vs the legacy
//      per-cell reconstruction, and the per-query range fast path
//   4. async pipeline: warm submit-to-resolve latency through
//      AsyncQueryEngine with and without a concurrent ~100ms cold
//      plan in the cold lane (head-of-line isolation), plus the
//      per-lane queue-depth / latency digests from AsyncStats
//   5. result streaming: SubmitStream vs the materializing Submit on
//      the θ-grid fast path (k=256, 10k ranges) — time-to-first-chunk
//      and peak resident chunk bytes vs the full answer vector
//   6. warm-restart snapshot store: cold start (register + certify +
//      transform + first submit) vs restart from a snapshot (mmap +
//      decode + first submit) for the spanner-backed theta subject
//   7. observability overhead: the warm x4 flood with the obs plane
//      stripped (no tenant families / flight recorder / burn tracker)
//      vs the full plane with a live 1 Hz /metrics scraper attached
//
// Exit status enforces the performance floor (skipped with --smoke):
//   - each policy plans exactly once (cache accounting)
//   - geomean warm single-thread speedup over the embedded PR-2
//     baselines >= 3x
//   - 16-thread scaling: >= 8x single-thread on >=16-core hosts, and
//     no contention collapse (>= 0.35x per core, capped) elsewhere
//   - scatter release beats the legacy per-cell reconstruction >= 50x
//   - grouped batch is not slower than the submit loop
//   - a disjoint-domain batch charges max(eps), not sum(eps)
//   - cold-plan-under-warm-flood: warm p99 with a concurrent cold
//     plan <= max(2x the no-cold baseline, half the cold plan cost)
//     — warm queries must never pay the head-of-line price
//   - streaming: time-to-first-chunk <= 1/10 of the materialized
//     submit's latency, with every answer delivered (bit-level
//     equality vs Submit is pinned by engine_stream_test, not here —
//     the two runs here are distinct submits with distinct noise)
//   - warm restart from a snapshot admits the spanner-backed subject
//     >= 10x faster than its cold start, with zero plan-cache misses
//   - the obs plane is free at the advertised price: warm x4 geomean
//     with obs + scraper >= 0.95x of the stripped engine
//
// Structural checks enforced even in --smoke (a zero would mean the
// bench measured nothing, not that the code is slow):
//   - the async section's same-key cold followers must coalesce
//     behind the leader (cold_plans_coalesced >= 1)
//   - the restarted engine must actually load the snapshot
//
// Flags: --smoke  tiny iteration counts, perf-floor gates off
//        --json   also write BENCH_engine.json (machine-readable)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/mechanisms_kd.h"
#include "engine/async_engine.h"
#include "engine/query_engine.h"
#include "engine/snapshot_store.h"
#include "workload/builders.h"

using namespace blowfish;

namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 11);
  return x;
}

struct Subject {
  const char* label;
  const char* policy_name;
  Policy policy;
  size_t domain;
  /// PR-2 warm single-thread qps on the reference box (string-id
  /// path, the only path PR-2 had). The 3x floor is taken against
  /// these.
  double baseline_pr2_qps;
};

struct WarmResult {
  double qps = 0.0;
};

/// Warm throughput. Sessions are opened and handles resolved before
/// the stopwatch starts; workers spin on a start flag so the timed
/// region contains only submits.
double WarmQps(QueryEngine* engine, const Subject& subject, size_t lane,
               size_t threads, size_t submits_per_thread, bool use_handles) {
  // Session names carry the nominal lane (1/4/16), not the actual
  // thread count: in --smoke the x4/x16 lanes both clamp to the core
  // count, and naming by actual threads would collide on the second
  // OpenSession.
  std::vector<QueryRequest> requests(threads);
  for (size_t t = 0; t < threads; ++t) {
    const std::string session = std::string(subject.policy_name) + "-x" +
                                std::to_string(lane) + "-w" +
                                std::to_string(t) +
                                (use_handles ? "-h" : "-s");
    engine->OpenSession(session, 1e9).Check();
    QueryRequest& request = requests[t];
    request.session = session;
    request.policy = subject.policy_name;
    request.workload = IdentityWorkload(subject.domain);
    request.epsilon = 0.1;
    if (use_handles) {
      request.session_handle = engine->ResolveSession(session).ValueOrDie();
      request.policy_handle =
          engine->ResolvePolicy(subject.policy_name).ValueOrDie();
    }
  }
  std::atomic<size_t> ready{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (size_t i = 0; i < submits_per_thread; ++i) {
        engine->Submit(requests[t]).ValueOrDie();
      }
    });
  }
  while (ready.load() != threads) std::this_thread::yield();
  Stopwatch watch;
  start.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  return static_cast<double>(threads * submits_per_thread) /
         watch.ElapsedSeconds();
}

double Geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// One async flood run: `flood` warm submits through a fresh
/// AsyncQueryEngine, optionally with a ~100ms cold spanner plan
/// injected into the cold lane first. Latency is measured externally
/// (submit stamp -> ordered wait), so the numbers are exact rather
/// than the AsyncStats digest's power-of-2 upper bounds; the digest
/// and queue depths are returned alongside for the JSON record.
struct AsyncFloodResult {
  double warm_p50_ms = 0.0;
  double warm_p99_ms = 0.0;
  double cold_plan_ms = 0.0;  ///< cold submit-to-resolve (0 if none)
  AsyncStats stats;
};

AsyncFloodResult AsyncWarmFlood(bool with_cold, size_t flood) {
  using Clock = std::chrono::steady_clock;
  constexpr size_t kWarmDomain = 1024;
  constexpr size_t kColdDomain = 4096;

  EngineOptions options;
  options.seed = 2015;
  options.async_workers = 4;  // cold_limit 2: >= 2 workers stay warm
  options.async_queue_capacity = flood + 16;
  AsyncQueryEngine async(options);
  QueryEngine& engine = async.engine();
  engine.RegisterPolicy("warm", LinePolicy(kWarmDomain), Ramp(kWarmDomain), 1e9)
      .Check();
  engine
      .RegisterPolicy("slowplan", Theta1DPolicy(kColdDomain, 4),
                      Ramp(kColdDomain), 1e9)
      .Check();
  engine.OpenSession("flood", 1e9).Check();

  QueryRequest warm_request;
  warm_request.session = "flood";
  warm_request.policy = "warm";
  warm_request.workload = IdentityWorkload(kWarmDomain);
  warm_request.epsilon = 0.01;
  warm_request.session_handle = engine.ResolveSession("flood").ValueOrDie();
  warm_request.policy_handle = engine.ResolvePolicy("warm").ValueOrDie();
  // Warm the fast policy so the flood classifies warm.
  engine.Submit(warm_request).ValueOrDie();

  AsyncFloodResult result;
  std::future<Result<QueryResult>> cold_future;
  std::vector<std::future<Result<QueryResult>>> cold_followers;
  std::thread cold_waiter;
  if (with_cold) {
    QueryRequest cold_request;
    cold_request.session = "flood";
    cold_request.policy = "slowplan";
    cold_request.workload = IdentityWorkload(kColdDomain);
    cold_request.epsilon = 0.01;
    const Clock::time_point cold_submit = Clock::now();
    cold_future = async.SubmitAsync(cold_request);
    // Stamped by a dedicated waiter at resolve time, so cold_plan_ms
    // is the true submit-to-resolve cost — measuring it after the
    // warm wait loop would report max(cold, flood) and inflate the
    // gate's half-cold-cost ceiling.
    cold_waiter = std::thread([&result, &cold_future, cold_submit] {
      cold_future.wait();
      result.cold_plan_ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - cold_submit)
                                .count();
    });
    // The flood must overlap the plan: wait for the cold leader to
    // claim a worker before submitting warm traffic.
    while (async.stats().cold_in_flight == 0 &&
           cold_future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
      std::this_thread::yield();
    }
    // Two same-key followers submitted while the leader still owns the
    // certification (~100ms): workers must park them behind the
    // in-flight plan instead of re-running it. This is the only way
    // `cold_plans_coalesced` can become nonzero — a single cold
    // submission (the old shape of this bench) reported a structural 0
    // that said nothing about coalescing, even on one-core hosts where
    // worker threads still interleave.
    for (int i = 0; i < 2; ++i) {
      cold_followers.push_back(async.SubmitAsync(cold_request));
    }
  }

  std::vector<Clock::time_point> submitted(flood);
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(flood);
  for (size_t i = 0; i < flood; ++i) {
    submitted[i] = Clock::now();
    futures.push_back(async.SubmitAsync(warm_request));
  }
  std::vector<double> latencies_ms(flood);
  for (size_t i = 0; i < flood; ++i) {
    futures[i].wait();
    latencies_ms[i] = std::chrono::duration<double, std::milli>(
                          Clock::now() - submitted[i])
                          .count();
    futures[i].get().ValueOrDie();
  }
  if (with_cold) {
    cold_waiter.join();
    cold_future.get().ValueOrDie();
    for (std::future<Result<QueryResult>>& follower : cold_followers) {
      follower.get().ValueOrDie();
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.warm_p50_ms = latencies_ms[flood / 2];
  result.warm_p99_ms = latencies_ms[std::min(flood - 1, flood * 99 / 100)];
  result.stats = async.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool write_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) write_json = true;
  }
  const bool full = bench::FullMode();
  const size_t warm_submits = smoke ? 50 : (full ? 2000 : 500);
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  // Smoke mode runs on CI shells as small as one core, where "x4" and
  // "x16" would measure scheduler thrash, not engine scaling. Clamp
  // the submitter counts to the hardware and record the clamp in the
  // JSON so downstream readers never mistake a 1-thread number for a
  // 16-thread one. Full mode keeps the nominal counts: oversubscribing
  // is part of what the contention gates probe there.
  const size_t threads_x4 = smoke ? std::min<size_t>(4, cores) : 4;
  const size_t threads_x16 = smoke ? std::min<size_t>(16, cores) : 16;
  bool failed = false;

  std::vector<Subject> subjects;
  subjects.push_back(
      {"line G^1_1024 (tree)", "line", LinePolicy(1024), 1024, 16200.0});
  subjects.push_back({"theta G^4_1024 (spanner)", "theta",
                      Theta1DPolicy(1024, 4), 1024, 20300.0});
  subjects.push_back({"grid 16x16 (matrix)", "grid",
                      GridPolicy(DomainShape({16, 16}), 1), 256, 3420.0});
  subjects.push_back({"grid 16x16 th=4 (slab)", "slab",
                      GridPolicy(DomainShape({16, 16}), 4), 256, 1270.0});
  subjects.push_back(
      {"unbounded DP 1024", "dp", UnboundedDpPolicy(1024), 1024, 26600.0});

  bench::PrintHeader(
      "BENCH_ENGINE engine throughput (identity workload, eps=0.1, " +
          std::to_string(warm_submits) + " warm submits/thread, handles)",
      {"cold ms", "qps x1 str", "qps x1", "qps x4", "qps x16", "vs PR-2"});

  struct SubjectRow {
    std::string name;
    double cold_ms = 0.0;
    double qps1_string = 0.0;
    double qps1 = 0.0;
    double qps4 = 0.0;
    double qps16 = 0.0;
    double speedup = 0.0;
  };
  std::vector<SubjectRow> rows;
  std::vector<double> speedups;

  for (Subject& subject : subjects) {
    QueryEngine engine(EngineOptions{/*seed=*/2015, false});
    engine
        .RegisterPolicy(subject.policy_name, subject.policy,
                        Ramp(subject.domain), 1e9)
        .Check();
    engine.OpenSession("cold", 1e9).Check();

    QueryRequest request;
    request.session = "cold";
    request.policy = subject.policy_name;
    request.workload = IdentityWorkload(subject.domain);
    request.epsilon = 0.1;

    Stopwatch watch;
    const QueryResult cold = engine.Submit(request).ValueOrDie();
    const double cold_ms = watch.ElapsedMillis();
    if (cold.plan_cache_hit) {
      std::fprintf(stderr, "unexpected cache hit on cold submit\n");
      return 1;
    }

    SubjectRow row;
    row.name = subject.policy_name;
    row.cold_ms = cold_ms;
    row.qps1_string =
        WarmQps(&engine, subject, 1, 1, warm_submits, /*use_handles=*/false);
    row.qps1 =
        WarmQps(&engine, subject, 1, 1, warm_submits, /*use_handles=*/true);
    row.qps4 =
        WarmQps(&engine, subject, 4, threads_x4, warm_submits / 2, true);
    row.qps16 =
        WarmQps(&engine, subject, 16, threads_x16, warm_submits / 4, true);
    row.speedup = row.qps1 / subject.baseline_pr2_qps;
    speedups.push_back(row.speedup);
    bench::PrintRow(subject.label,
                    {bench::Fmt(row.cold_ms), bench::Fmt(row.qps1_string),
                     bench::Fmt(row.qps1), bench::Fmt(row.qps4),
                     bench::Fmt(row.qps16),
                     bench::Fmt(row.speedup) + "x"});
    rows.push_back(row);

    const PlanCache::Stats stats = engine.plan_cache_stats();
    if (stats.misses != 1) {
      std::fprintf(stderr, "expected exactly one plan per policy, saw %llu\n",
                   static_cast<unsigned long long>(stats.misses));
      return 1;
    }
    // 16-thread scaling floor: near-linear where the hardware has the
    // cores, and no contention collapse anywhere (a sharded hot path
    // must not be slower with 16 submitters than with one).
    const double scale16 = row.qps16 / row.qps1;
    const double floor16 =
        cores >= 16 ? 8.0
                    : 0.35 * static_cast<double>(std::min<size_t>(cores, 16));
    if (!smoke && scale16 < floor16) {
      std::fprintf(stderr,
                   "%s: 16-thread scaling %.2fx below floor %.2fx "
                   "(%zu cores)\n",
                   subject.policy_name, scale16, floor16, cores);
      failed = true;
    }
  }

  const double geomean_speedup = Geomean(speedups);
  std::printf(
      "  geomean warm x1 speedup vs PR-2 baseline: %.2fx (floor 3x; "
      "%zu-core host)\n",
      geomean_speedup, cores);
  if (!smoke && geomean_speedup < 3.0) {
    std::fprintf(stderr,
                 "geomean warm speedup %.2fx is below the 3x floor\n",
                 geomean_speedup);
    failed = true;
  }

  // ------------------------------------------------------------------
  // Grouped SubmitBatch vs a Submit loop (one plan resolution + one
  // atomic charge per (session, policy) group), and the
  // parallel-composition charge rule.
  double loop_qps = 0.0, batch_qps = 0.0, batch_ratio = 0.0;
  double parallel_spent = 0.0, sequential_spent = 0.0;
  {
    const size_t domain = 256;
    const size_t batch_size = 64;
    const size_t rounds = smoke ? 4 : 40;
    QueryEngine engine(EngineOptions{/*seed=*/2015, false});
    engine.RegisterPolicy("batch", LinePolicy(domain), Ramp(domain), 1e9)
        .Check();
    engine.OpenSession("loop", 1e9).Check();
    engine.OpenSession("batch", 1e9).Check();

    QueryRequest proto;
    proto.workload = IdentityWorkload(domain);
    proto.policy = "batch";
    proto.epsilon = 0.001;

    std::vector<QueryRequest> batch(batch_size, proto);
    for (QueryRequest& r : batch) {
      r.session = "batch";
      r.session_handle = engine.ResolveSession("batch").ValueOrDie();
      r.policy_handle = engine.ResolvePolicy("batch").ValueOrDie();
    }
    QueryRequest loop_request = proto;
    loop_request.session = "loop";
    loop_request.session_handle = engine.ResolveSession("loop").ValueOrDie();
    loop_request.policy_handle = engine.ResolvePolicy("batch").ValueOrDie();
    engine.Submit(loop_request).ValueOrDie();  // warm the plan

    Stopwatch watch;
    for (size_t round = 0; round < rounds; ++round) {
      for (size_t i = 0; i < batch_size; ++i) {
        engine.Submit(loop_request).ValueOrDie();
      }
    }
    loop_qps = static_cast<double>(rounds * batch_size) /
               watch.ElapsedSeconds();

    watch.Restart();
    for (size_t round = 0; round < rounds; ++round) {
      const std::vector<Result<QueryResult>> results =
          engine.SubmitBatch(batch);
      for (const Result<QueryResult>& result : results) {
        result.ValueOrDie();
      }
    }
    batch_qps = static_cast<double>(rounds * batch_size) /
                watch.ElapsedSeconds();
    batch_ratio = batch_qps / loop_qps;

    bench::PrintHeader(
        "BENCH_ENGINE grouped batch (64 requests, one (session,policy) "
        "group)",
        {"loop qps", "batch qps", "ratio"});
    bench::PrintRow("submit loop vs SubmitBatch",
                    {bench::Fmt(loop_qps), bench::Fmt(batch_qps),
                     bench::Fmt(batch_ratio) + "x"});
    // Floor at 0.9x: the win per entry (one charge + one plan lookup
    // per group) is a few percent on large-domain releases, within
    // the measurement noise of a busy host, so the gate only rejects
    // a real regression.
    if (!smoke && batch_ratio < 0.9) {
      std::fprintf(stderr,
                   "grouped SubmitBatch (%.0f qps) is slower than the "
                   "submit loop (%.0f qps)\n",
                   batch_qps, loop_qps);
      failed = true;
    }

    // Parallel-composition accounting: a declared-disjoint batch of m
    // requests must charge max(eps), a plain batch sum(eps). This is
    // exact arithmetic — enforced even in smoke mode.
    engine.OpenSession("par", 1e9).Check();
    engine.OpenSession("seq", 1e9).Check();
    std::vector<QueryRequest> tiny(3, proto);
    tiny[0].epsilon = 0.3;
    tiny[1].epsilon = 0.5;
    tiny[2].epsilon = 0.2;
    for (QueryRequest& r : tiny) r.session = "par";
    BatchOptions disjoint;
    disjoint.disjoint_domains = true;
    for (const auto& result : engine.SubmitBatch(tiny, disjoint)) {
      result.ValueOrDie();
    }
    parallel_spent = 1e9 - *engine.SessionRemaining("par");
    for (QueryRequest& r : tiny) r.session = "seq";
    for (const auto& result : engine.SubmitBatch(tiny)) {
      result.ValueOrDie();
    }
    sequential_spent = 1e9 - *engine.SessionRemaining("seq");
    std::printf(
        "  disjoint batch charged %.3f eps (max), plain batch %.3f eps "
        "(sum)\n",
        parallel_spent, sequential_spent);
    if (std::abs(parallel_spent - 0.5) > 1e-9 ||
        std::abs(sequential_spent - 1.0) > 1e-9) {
      std::fprintf(stderr,
                   "parallel-composition charge wrong: max %.6f "
                   "(want 0.5), sum %.6f (want 1.0)\n",
                   parallel_spent, sequential_spent);
      return 1;
    }
  }

  // ------------------------------------------------------------------
  // θ>=2 grid: the single-pass scatter histogram release vs the legacy
  // per-cell reconstruction it replaced (O(edges) vs O(k²·edges)), and
  // the per-query range fast path, which now exists for its utility —
  // per-range error scales with the range perimeter instead of its
  // area — rather than for speed.
  double scatter_ms = 0.0, legacy_est_ms = 0.0, fastpath_ms = 0.0;
  {
    const size_t k = smoke ? 64 : 256;
    const size_t theta = 4;
    const size_t num_ranges = smoke ? 100 : 500;
    const size_t warm_range_submits = smoke ? 3 : (full ? 20 : 5);
    const size_t legacy_cells = smoke ? 64 : 256;  // sampled, then scaled

    QueryEngine engine(EngineOptions{/*seed=*/7, /*warm_plan_cache=*/false});
    engine
        .RegisterPolicy("bigslab", GridPolicy(DomainShape({k, k}), theta),
                        Ramp(k * k), 1e9)
        .Check();
    engine.OpenSession("ranges", 1e9).Check();

    Rng workload_rng(11);
    QueryRequest request;
    request.session = "ranges";
    request.policy = "bigslab";
    request.ranges =
        RandomRanges(DomainShape({k, k}), num_ranges, &workload_rng);
    request.epsilon = 0.1;

    bench::PrintHeader(
        "BENCH_ENGINE theta-grid releases (grid " + std::to_string(k) + "x" +
            std::to_string(k) + " th=" + std::to_string(theta) + ", q=" +
            std::to_string(num_ranges) + " ranges)",
        {"cold ms", "warm ms"});

    Stopwatch watch;
    QueryResult cold = engine.Submit(request).ValueOrDie();
    const double range_cold_ms = watch.ElapsedMillis();
    if (!cold.range_fast_path) {
      std::fprintf(stderr, "range request missed the fast path\n");
      return 1;
    }
    watch.Restart();
    for (size_t i = 0; i < warm_range_submits; ++i) {
      engine.Submit(request).ValueOrDie();
    }
    fastpath_ms =
        watch.ElapsedMillis() / static_cast<double>(warm_range_submits);
    bench::PrintRow("range fast path (utility-optimal)",
                    {bench::Fmt(range_cold_ms), bench::Fmt(fastpath_ms)});

    // Dense histogram release through the scatter reconstruction.
    QueryRequest dense = request;
    dense.ranges.reset();
    dense.workload = IdentityWorkload(k * k);
    watch.Restart();
    for (size_t i = 0; i < warm_range_submits; ++i) {
      QueryResult full_release = engine.Submit(dense).ValueOrDie();
      if (full_release.range_fast_path || !full_release.plan_cache_hit) {
        std::fprintf(stderr, "dense submit took an unexpected path\n");
        return 1;
      }
    }
    scatter_ms =
        watch.ElapsedMillis() / static_cast<double>(warm_range_submits);
    bench::PrintRow("dense release (scatter)",
                    {"-", bench::Fmt(scatter_ms)});

    // Legacy per-cell reconstruction, sampled on `legacy_cells` cells
    // and scaled to the full k² (running all cells takes ~50 s at
    // k=256 — the cost this PR removed).
    {
      Rng rng(13);
      auto mech = GridThetaRangeMechanism::Create(k, theta).ValueOrDie();
      const Vector data = Ramp(k * k);
      const Vector xg = mech->PrecomputeTransformed(data);
      std::vector<RangeQuery> cells;
      for (size_t i = 0; i < legacy_cells; ++i) {
        const size_t r = i / k, c = i % k;
        cells.push_back({{r, c}, {r, c}});
      }
      const RangeWorkload sampled("cells", DomainShape({k, k}),
                                  std::move(cells));
      watch.Restart();
      mech->AnswerRangesOnTransformed(sampled, xg, Sum(data), 0.1, &rng);
      legacy_est_ms = watch.ElapsedMillis() *
                      static_cast<double>(k * k) /
                      static_cast<double>(legacy_cells);
      bench::PrintRow("legacy per-cell release (est.)",
                      {"-", bench::Fmt(legacy_est_ms)});
    }

    const double release_speedup = legacy_est_ms / scatter_ms;
    std::printf("  scatter release speedup over per-cell: %.0fx\n",
                release_speedup);
    if (!smoke && release_speedup < 50.0) {
      std::fprintf(stderr,
                   "scatter release speedup %.1fx below the 50x floor\n",
                   release_speedup);
      failed = true;
    }
  }

  // ------------------------------------------------------------------
  // Async pipeline: warm submit-to-resolve latency with and without a
  // concurrent cold plan. The cold lane runs a ~100ms spanner
  // certification (theta-1D 4096) while the warm lane floods; if the
  // lanes isolate properly, warm p99 barely moves.
  AsyncFloodResult async_base, async_cold;
  {
    const size_t flood = smoke ? 200 : 2000;
    async_base = AsyncWarmFlood(/*with_cold=*/false, flood);
    async_cold = AsyncWarmFlood(/*with_cold=*/true, flood);

    bench::PrintHeader(
        "BENCH_ENGINE async pipeline (4 workers, " + std::to_string(flood) +
            " warm submits, cold = theta-1D 4096 spanner plan)",
        {"warm p50 ms", "warm p99 ms", "cold ms", "peak depth"});
    bench::PrintRow("warm flood alone",
                    {bench::Fmt(async_base.warm_p50_ms),
                     bench::Fmt(async_base.warm_p99_ms), "-",
                     std::to_string(async_base.stats.warm.peak_depth)});
    bench::PrintRow("warm flood + cold plan",
                    {bench::Fmt(async_cold.warm_p50_ms),
                     bench::Fmt(async_cold.warm_p99_ms),
                     bench::Fmt(async_cold.cold_plan_ms),
                     std::to_string(async_cold.stats.warm.peak_depth)});

    // "Unaffected" gate: warm p99 under a concurrent cold plan stays
    // within 2x the no-cold baseline. The half-cold-cost floor keeps
    // the gate meaningful on one- and two-core hosts, where the cold
    // plan steals CPU (scheduler quanta land in the tail) even though
    // no warm query ever queues behind it — the property the gate
    // protects is "never pay the head-of-line price", and paying less
    // than half the plan cost while sharing one core proves it.
    const double p99_ceiling = std::max(2.0 * async_base.warm_p99_ms,
                                        0.5 * async_cold.cold_plan_ms);
    std::printf(
        "  warm p99 %.3f ms -> %.3f ms under cold plan (ceiling %.3f ms)\n",
        async_base.warm_p99_ms, async_cold.warm_p99_ms, p99_ceiling);
    if (!smoke && async_cold.warm_p99_ms > p99_ceiling) {
      std::fprintf(stderr,
                   "cold plan blocked the warm lane: p99 %.3f ms vs "
                   "ceiling %.3f ms (baseline %.3f ms, cold %.1f ms)\n",
                   async_cold.warm_p99_ms, p99_ceiling,
                   async_base.warm_p99_ms, async_cold.cold_plan_ms);
      failed = true;
    }
    // The flood and the cold submit must both have used their lanes.
    if (async_cold.stats.cold.enqueued == 0 ||
        async_cold.stats.warm.enqueued == 0) {
      std::fprintf(stderr, "async lanes were not exercised\n");
      return 1;
    }
    // Structural, not perf (enforced in smoke too): the two same-key
    // followers overlapped the leader's certification, so at least one
    // must have parked-and-coalesced. Zero means the run measured
    // nothing about coalescing and its JSON field would be a lie.
    if (async_cold.stats.cold_plans_coalesced == 0) {
      std::fprintf(stderr,
                   "cold_plans_coalesced == 0: same-key cold followers "
                   "did not overlap the leader's plan\n");
      return 1;
    }
    std::printf("  cold plans coalesced behind the leader: %llu\n",
                static_cast<unsigned long long>(
                    async_cold.stats.cold_plans_coalesced));
  }

  // ------------------------------------------------------------------
  // Result streaming: stream vs materialize on the θ-grid fast path.
  // The materialized submit holds the caller until all q answers
  // exist; the stream delivers the first chunk after only the noisy
  // releases plus one chunk's reconstruction, with resident answer
  // memory bounded by the chunk buffer instead of q.
  double materialize_ms = 0.0, stream_ttfc_ms = 0.0, stream_total_ms = 0.0;
  size_t stream_peak_bytes = 0, materialized_bytes = 0;
  {
    const size_t k = smoke ? 64 : 256;
    const size_t num_ranges = smoke ? 1000 : 10000;
    EngineOptions stream_engine_options;
    stream_engine_options.seed = 2015;
    // Sample every submit so the telemetry dump below carries stage
    // traces (this section is few submits; sampling is not on the
    // timed inner loops above).
    stream_engine_options.trace_sample_rate = 1.0;
    QueryEngine engine(stream_engine_options);
    engine
        .RegisterPolicy("streamed", GridPolicy(DomainShape({k, k}), 4),
                        Ramp(k * k), 1e9)
        .Check();
    engine.OpenSession("s", 1e9).Check();
    Rng workload_rng(23);
    QueryRequest request;
    request.session = "s";
    request.policy = "streamed";
    request.ranges =
        RandomRanges(DomainShape({k, k}), num_ranges, &workload_rng);
    request.epsilon = 0.1;
    engine.Submit(request).ValueOrDie();  // warm the plan + transform

    Stopwatch watch;
    const QueryResult full = engine.Submit(request).ValueOrDie();
    materialize_ms = watch.ElapsedMillis();
    materialized_bytes = full.answers.size() * sizeof(double);

    StreamOptions stream_options;
    stream_options.chunk_queries = 256;
    watch.Restart();
    const std::shared_ptr<ResultStream> stream =
        engine.SubmitStream(request, stream_options).ValueOrDie();
    StreamChunk chunk;
    size_t received = 0;
    if (stream->Next(&chunk).ValueOrDie() != StreamNext::kChunk) {
      std::fprintf(stderr, "stream produced no first chunk\n");
      return 1;
    }
    stream_ttfc_ms = watch.ElapsedMillis();
    received += chunk.values.size();
    for (;;) {
      const StreamNext next = stream->Next(&chunk).ValueOrDie();
      if (next == StreamNext::kDone) break;
      received += chunk.values.size();
    }
    stream_total_ms = watch.ElapsedMillis();
    stream_peak_bytes = stream->peak_resident_bytes();
    if (received != num_ranges) {
      std::fprintf(stderr, "stream delivered %zu of %zu answers\n", received,
                   num_ranges);
      return 1;
    }

    bench::PrintHeader(
        "BENCH_ENGINE result streaming (grid " + std::to_string(k) + "x" +
            std::to_string(k) + " th=4, q=" + std::to_string(num_ranges) +
            " ranges, chunk 256)",
        {"total ms", "first ms", "resident KB"});
    bench::PrintRow("materializing Submit",
                    {bench::Fmt(materialize_ms), bench::Fmt(materialize_ms),
                     bench::Fmt(static_cast<double>(materialized_bytes) /
                                1024.0)});
    bench::PrintRow("SubmitStream",
                    {bench::Fmt(stream_total_ms), bench::Fmt(stream_ttfc_ms),
                     bench::Fmt(static_cast<double>(stream_peak_bytes) /
                                1024.0)});
    std::printf(
        "  time-to-first-chunk %.2f ms vs %.2f ms materialized (gate: "
        "<= 1/10)\n",
        stream_ttfc_ms, materialize_ms);
    if (!smoke && stream_ttfc_ms > materialize_ms / 10.0) {
      std::fprintf(stderr,
                   "time-to-first-chunk %.2f ms exceeds 1/10 of the "
                   "materialized latency %.2f ms\n",
                   stream_ttfc_ms, materialize_ms);
      failed = true;
    }

    if (write_json) {
      // Telemetry artifacts from this section's engine: the unified
      // metrics snapshot and the ε-audit JSONL (what CI uploads).
      const auto dump = [](const char* path, const std::string& body) {
        FILE* f = std::fopen(path, "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot write %s\n", path);
          return;
        }
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("  wrote %s\n", path);
      };
      dump("BENCH_engine_metrics.json",
           engine.telemetry().metrics().SnapshotJson());
      dump("BENCH_engine_audit.jsonl", engine.telemetry().audit().ExportJsonl());
    }
  }

  // ------------------------------------------------------------------
  // Warm-restart snapshot store: the full cold path (construct,
  // register, plan + certify + transform on first submit) vs a
  // restart that mmaps the snapshot written by the first engine and
  // readmits the same request with everything pre-populated. The
  // subject is the spanner-backed theta policy, whose CertifySpanner
  // pass dominates cold admission — exactly the cost the snapshot's
  // certified-stretch hint removes.
  double snap_cold_ms = 0.0, snap_warm_ms = 0.0, snap_speedup = 0.0;
  uint64_t snap_generation = 0;
  {
    const size_t k = smoke ? 1024 : 4096;
    char tmpl[] = "/tmp/bfsnapbench.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "cannot create snapshot bench dir\n");
      return 1;
    }
    const std::string dir = tmpl;

    EngineOptions snap_options;
    snap_options.seed = 2015;
    snap_options.snapshot_path = dir;

    QueryRequest request;
    request.session = "s";
    request.policy = "theta";
    Rng workload_rng(29);
    request.ranges = RandomRanges(DomainShape({k}), 16, &workload_rng);
    request.epsilon = 0.01;

    Stopwatch watch;
    {
      QueryEngine engine(snap_options);
      engine
          .RegisterPolicy("theta", Theta1DPolicy(k, 4), Ramp(k), 1e9)
          .Check();
      engine.OpenSession("s", 1e9).Check();
      engine.Submit(request).ValueOrDie();
      snap_cold_ms = watch.ElapsedMillis();
      engine.WriteSnapshot().Check();
    }

    watch.Restart();
    QueryEngine engine(snap_options);
    engine.OpenSession("s", 1e9).Check();
    const QueryResult warm = engine.Submit(request).ValueOrDie();
    snap_warm_ms = watch.ElapsedMillis();
    snap_generation = engine.snapshot_restore_stats().generation;
    snap_speedup = snap_cold_ms / snap_warm_ms;

    bench::PrintHeader(
        "BENCH_ENGINE warm restart (theta G^4_" + std::to_string(k) +
            " spanner, snapshot store)",
        {"cold start ms", "warm restart ms", "speedup"});
    bench::PrintRow("register+certify vs mmap+decode",
                    {bench::Fmt(snap_cold_ms), bench::Fmt(snap_warm_ms),
                     bench::Fmt(snap_speedup) + "x"});

    // Structural (smoke too): the restart must have restored from the
    // snapshot and admitted with zero cold work, or the timing above
    // compared nothing.
    if (!engine.snapshot_restore_stats().loaded || !warm.plan_cache_hit ||
        engine.plan_cache_stats().misses != 0) {
      std::fprintf(stderr,
                   "warm restart did not restore from the snapshot "
                   "(loaded=%d hit=%d misses=%llu)\n",
                   engine.snapshot_restore_stats().loaded ? 1 : 0,
                   warm.plan_cache_hit ? 1 : 0,
                   static_cast<unsigned long long>(
                       engine.plan_cache_stats().misses));
      return 1;
    }
    if (!smoke && snap_speedup < 10.0) {
      std::fprintf(stderr,
                   "warm-restart speedup %.1fx below the 10x floor "
                   "(cold %.1f ms, warm %.1f ms)\n",
                   snap_speedup, snap_cold_ms, snap_warm_ms);
      failed = true;
    }

    Result<std::vector<std::string>> files = snapshot::ListFiles(dir);
    if (files.ok()) {
      for (const std::string& name : files.ValueOrDie()) {
        ::unlink((dir + "/" + name).c_str());
      }
    }
    ::rmdir(dir.c_str());
  }

  // ------------------------------------------------------------------
  // Observability overhead. The per-request obs work (tenant family
  // updates, flight record, burn window arithmetic) plus a live
  // scraper must cost < 5% of warm x4 throughput — otherwise "always
  // on" is a lie operators pay for. `off` strips the plane entirely
  // (the pre-obs engine); `on` runs the defaults plus an in-process
  // scrape server polled at 1 Hz, the deployment this PR recommends.
  double obs_geomean_ratio = 0.0;
  struct ObsRow {
    std::string name;
    double qps_off = 0.0;
    double qps_on = 0.0;
    double ratio = 0.0;
  };
  std::vector<ObsRow> obs_rows;
  uint64_t obs_scrapes = 0;
  {
    bench::PrintHeader(
        "BENCH_ENGINE observability overhead (warm x" +
            std::to_string(threads_x4) + ", obs plane + 1 Hz /metrics "
            "scraper vs stripped engine)",
        {"qps obs off", "qps obs on", "ratio"});
    std::vector<double> ratios;
    for (Subject& subject : subjects) {
      const auto prime = [&](QueryEngine* engine) {
        engine
            ->RegisterPolicy(subject.policy_name, subject.policy,
                             Ramp(subject.domain), 1e9)
            .Check();
        engine->OpenSession("prime", 1e9).Check();
        QueryRequest request;
        request.session = "prime";
        request.policy = subject.policy_name;
        request.workload = IdentityWorkload(subject.domain);
        request.epsilon = 0.1;
        engine->Submit(request).ValueOrDie();  // plan once, off the clock
      };

      EngineOptions off_options;
      off_options.seed = 2015;
      off_options.warm_plan_cache = false;
      off_options.tenant_metrics_capacity = 0;
      off_options.flight_recorder_capacity = 0;
      off_options.burn_alerts_enabled = false;
      QueryEngine engine_off(off_options);
      prime(&engine_off);
      ObsRow row;
      row.name = subject.policy_name;
      row.qps_off = WarmQps(&engine_off, subject, 4, threads_x4,
                            warm_submits / 2, /*use_handles=*/true);

      EngineOptions on_options;  // obs defaults: families + flight on
      on_options.seed = 2015;
      on_options.warm_plan_cache = false;
      on_options.obs_port = 0;
      QueryEngine engine_on(on_options);
      if (engine_on.obs_server() == nullptr) {
        std::fprintf(stderr, "obs server failed to start: %s\n",
                     engine_on.obs_error().ToString().c_str());
        return 1;
      }
      prime(&engine_on);
      const int port = engine_on.obs_server()->port();
      std::atomic<bool> stop_scraper{false};
      std::thread scraper([port, &stop_scraper, &obs_scrapes] {
        while (!stop_scraper.load(std::memory_order_acquire)) {
          const Result<HttpResponse> scrape = ObsHttpGet(port, "/metrics");
          if (scrape.ok() && scrape.ValueOrDie().status == 200) {
            ++obs_scrapes;
          }
          // 1 Hz, polled in 50 ms slices so teardown is prompt.
          for (int i = 0; i < 20 && !stop_scraper.load(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }
      });
      row.qps_on = WarmQps(&engine_on, subject, 4, threads_x4,
                           warm_submits / 2, /*use_handles=*/true);
      stop_scraper.store(true, std::memory_order_release);
      scraper.join();

      row.ratio = row.qps_on / row.qps_off;
      ratios.push_back(row.ratio);
      bench::PrintRow(subject.label,
                      {bench::Fmt(row.qps_off), bench::Fmt(row.qps_on),
                       bench::Fmt(row.ratio) + "x"});
      obs_rows.push_back(row);
    }
    obs_geomean_ratio = Geomean(ratios);
    std::printf(
        "  obs-plane geomean throughput ratio: %.3fx (floor 0.95x), "
        "%llu live scrapes\n",
        obs_geomean_ratio, static_cast<unsigned long long>(obs_scrapes));
    // Structural (smoke too): the scraper must have actually scraped a
    // live server at least once per subject, or the "on" lane measured
    // an idle obs plane.
    if (obs_scrapes < subjects.size()) {
      std::fprintf(stderr,
                   "scraper landed %llu scrapes over %zu subjects — the "
                   "obs lane was not exercised\n",
                   static_cast<unsigned long long>(obs_scrapes),
                   subjects.size());
      return 1;
    }
    if (!smoke && obs_geomean_ratio < 0.95) {
      std::fprintf(stderr,
                   "obs plane costs %.1f%% of warm x4 throughput "
                   "(geomean ratio %.3f, floor 0.95)\n",
                   (1.0 - obs_geomean_ratio) * 100.0, obs_geomean_ratio);
      failed = true;
    }
  }

  if (write_json) {
    FILE* out = std::fopen("BENCH_engine.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_engine.json\n");
      return 1;
    }
    std::fprintf(out, "{\n  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(out, "  \"hardware_concurrency\": %zu,\n", cores);
    // The actual submitter counts behind warm_qps_x4/x16 (clamped to
    // the hardware in smoke mode; nominal 4/16 otherwise).
    std::fprintf(out,
                 "  \"warm_threads_x4\": %zu,\n  \"warm_threads_x16\": %zu,\n"
                 "  \"smoke_thread_clamp\": %s,\n",
                 threads_x4, threads_x16,
                 (threads_x4 < 4 || threads_x16 < 16) ? "true" : "false");
    std::fprintf(out, "  \"subjects\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SubjectRow& row = rows[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"cold_ms\": %.4f, "
                   "\"warm_qps_x1_string\": %.1f, \"warm_qps_x1\": %.1f, "
                   "\"warm_qps_x4\": %.1f, \"warm_qps_x16\": %.1f, "
                   "\"speedup_vs_pr2\": %.3f}%s\n",
                   row.name.c_str(), row.cold_ms,
                   row.qps1_string, row.qps1, row.qps4, row.qps16,
                   row.speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"geomean_speedup_vs_pr2\": %.3f,\n",
                 geomean_speedup);
    std::fprintf(out,
                 "  \"batch\": {\"loop_qps\": %.1f, \"batch_qps\": %.1f, "
                 "\"ratio\": %.3f},\n",
                 loop_qps, batch_qps, batch_ratio);
    std::fprintf(out,
                 "  \"parallel_composition\": {\"disjoint_spent_eps\": %.6f, "
                 "\"sequential_spent_eps\": %.6f},\n",
                 parallel_spent, sequential_spent);
    std::fprintf(out,
                 "  \"theta_grid\": {\"fast_path_warm_ms\": %.3f, "
                 "\"scatter_release_ms\": %.3f, "
                 "\"legacy_percell_est_ms\": %.3f},\n",
                 fastpath_ms, scatter_ms, legacy_est_ms);
    std::fprintf(out, "  \"async\": {\n");
    std::fprintf(out,
                 "    \"workers\": %zu,\n"
                 "    \"warm_p50_ms_base\": %.4f, \"warm_p99_ms_base\": "
                 "%.4f,\n"
                 "    \"warm_p50_ms_under_cold\": %.4f, "
                 "\"warm_p99_ms_under_cold\": %.4f,\n"
                 "    \"cold_plan_ms\": %.2f,\n",
                 async_cold.stats.workers, async_base.warm_p50_ms,
                 async_base.warm_p99_ms, async_cold.warm_p50_ms,
                 async_cold.warm_p99_ms, async_cold.cold_plan_ms);
    std::fprintf(out,
                 "    \"warm_peak_queue_depth\": %zu, "
                 "\"cold_peak_queue_depth\": %zu,\n"
                 "    \"cold_plans_coalesced\": %llu,\n",
                 async_cold.stats.warm.peak_depth,
                 async_cold.stats.cold.peak_depth,
                 static_cast<unsigned long long>(
                     async_cold.stats.cold_plans_coalesced));
    std::fprintf(out,
                 "    \"digest_warm_p50_ms\": %.4f, \"digest_warm_p99_ms\": "
                 "%.4f,\n"
                 "    \"digest_cold_p50_ms\": %.4f, \"digest_cold_p99_ms\": "
                 "%.4f\n  },\n",
                 async_cold.stats.warm.p50_ms, async_cold.stats.warm.p99_ms,
                 async_cold.stats.cold.p50_ms, async_cold.stats.cold.p99_ms);
    std::fprintf(out,
                 "  \"stream\": {\"materialize_ms\": %.3f, "
                 "\"stream_total_ms\": %.3f, \"time_to_first_chunk_ms\": "
                 "%.3f,\n"
                 "    \"peak_resident_chunk_bytes\": %zu, "
                 "\"materialized_answer_bytes\": %zu},\n",
                 materialize_ms, stream_total_ms, stream_ttfc_ms,
                 stream_peak_bytes, materialized_bytes);
    std::fprintf(out,
                 "  \"snapshot\": {\"cold_start_ms\": %.3f, "
                 "\"warm_restart_ms\": %.3f, \"speedup\": %.2f, "
                 "\"generation\": %llu},\n",
                 snap_cold_ms, snap_warm_ms, snap_speedup,
                 static_cast<unsigned long long>(snap_generation));
    std::fprintf(out, "  \"obs\": {\n    \"subjects\": [\n");
    for (size_t i = 0; i < obs_rows.size(); ++i) {
      const ObsRow& row = obs_rows[i];
      std::fprintf(out,
                   "      {\"name\": \"%s\", \"warm_qps_x4_obs_off\": %.1f, "
                   "\"warm_qps_x4_obs_on\": %.1f, \"ratio\": %.4f}%s\n",
                   row.name.c_str(), row.qps_off, row.qps_on, row.ratio,
                   i + 1 < obs_rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "    ],\n    \"geomean_ratio\": %.4f, "
                 "\"scrapes\": %llu, \"scrape_hz\": 1\n  }\n",
                 obs_geomean_ratio,
                 static_cast<unsigned long long>(obs_scrapes));
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("  wrote BENCH_engine.json\n");
  }

  return failed ? 1 : 0;
}
