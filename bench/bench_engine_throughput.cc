// BENCH_ENGINE: serving-layer throughput. Measures queries/second
// through QueryEngine::Submit for each planner family, separating the
// cold path (first submit pays planner + transform + spanner/matrix
// construction) from the warm path (plan-cache hit; only the release
// itself). Also reports multi-threaded warm throughput — the
// shared_mutex registry/cache should let independent sessions scale.
//
// Output format:
//   policy            cold one-shot (ms) | warm qps 1 thread | 4 threads

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/query_engine.h"
#include "workload/builders.h"

using namespace blowfish;

namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 11);
  return x;
}

struct Subject {
  const char* label;
  const char* policy_name;
  Policy policy;
  size_t domain;
};

double WarmQps(QueryEngine* engine, const Subject& subject, size_t threads,
               size_t submits_per_thread) {
  std::vector<std::thread> workers;
  Stopwatch watch;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string session = std::string(subject.policy_name) + "-x" +
                                  std::to_string(threads) + "-w" +
                                  std::to_string(t);
      engine->OpenSession(session, 1e9).Check();
      QueryRequest request;
      request.session = session;
      request.policy = subject.policy_name;
      request.workload = IdentityWorkload(subject.domain);
      request.epsilon = 0.1;
      for (size_t i = 0; i < submits_per_thread; ++i) {
        engine->Submit(request).ValueOrDie();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return static_cast<double>(threads * submits_per_thread) /
         watch.ElapsedSeconds();
}

}  // namespace

int main() {
  const size_t warm_submits = bench::FullMode() ? 2000 : 200;

  std::vector<Subject> subjects;
  subjects.push_back({"line G^1_1024 (tree)", "line", LinePolicy(1024), 1024});
  subjects.push_back({"theta G^4_1024 (spanner)", "theta",
                      Theta1DPolicy(1024, 4), 1024});
  subjects.push_back({"grid 16x16 (matrix)", "grid",
                      GridPolicy(DomainShape({16, 16}), 1), 256});
  subjects.push_back({"grid 16x16 th=4 (slab)", "slab",
                      GridPolicy(DomainShape({16, 16}), 4), 256});
  subjects.push_back({"unbounded DP 1024", "dp", UnboundedDpPolicy(1024),
                      1024});

  bench::PrintHeader(
      "BENCH_ENGINE engine throughput (identity workload, eps=0.1, " +
          std::to_string(warm_submits) + " warm submits/thread)",
      {"cold ms", "warm qps x1", "warm qps x4"});

  for (Subject& subject : subjects) {
    QueryEngine engine;
    engine
        .RegisterPolicy(subject.policy_name, subject.policy,
                        Ramp(subject.domain), 1e9)
        .Check();
    engine.OpenSession("cold", 1e9).Check();

    QueryRequest request;
    request.session = "cold";
    request.policy = subject.policy_name;
    request.workload = IdentityWorkload(subject.domain);
    request.epsilon = 0.1;

    Stopwatch watch;
    const QueryResult cold = engine.Submit(request).ValueOrDie();
    const double cold_ms = watch.ElapsedMillis();
    if (cold.plan_cache_hit) {
      std::fprintf(stderr, "unexpected cache hit on cold submit\n");
      return 1;
    }

    const double qps1 = WarmQps(&engine, subject, 1, warm_submits);
    const double qps4 = WarmQps(&engine, subject, 4, warm_submits);
    bench::PrintRow(subject.label, {bench::Fmt(cold_ms), bench::Fmt(qps1),
                                    bench::Fmt(qps4)});

    const PlanCache::Stats stats = engine.plan_cache_stats();
    if (stats.misses != 1) {
      std::fprintf(stderr, "expected exactly one plan per policy, saw %llu\n",
                   static_cast<unsigned long long>(stats.misses));
      return 1;
    }
  }

  // ------------------------------------------------------------------
  // Range fast path vs dense full-histogram release on a big θ-grid.
  // The adapter's Run() reconstructs all k² cells from every spanner
  // edge — O(k²·edges) — while the fast path rebuilds only the q
  // queried ranges from the same releases — O(q·edges). At k=256 the
  // dense detour is the engine's dominant serving cost.
  {
    const size_t k = 256;  // acceptance floor: k >= 256, θ >= 2
    const size_t theta = 4;
    const size_t num_ranges = bench::FullMode() ? 2000 : 500;
    const size_t warm_range_submits = bench::FullMode() ? 20 : 5;

    QueryEngine engine(EngineOptions{/*seed=*/7, /*warm_plan_cache=*/false});
    engine
        .RegisterPolicy("bigslab", GridPolicy(DomainShape({k, k}), theta),
                        Ramp(k * k), 1e9)
        .Check();
    engine.OpenSession("ranges", 1e9).Check();

    Rng workload_rng(11);
    QueryRequest request;
    request.session = "ranges";
    request.policy = "bigslab";
    request.ranges = RandomRanges(DomainShape({k, k}), num_ranges,
                                  &workload_rng);
    request.epsilon = 0.1;

    bench::PrintHeader(
        "BENCH_ENGINE range fast path vs dense histogram (grid " +
            std::to_string(k) + "x" + std::to_string(k) + " th=" +
            std::to_string(theta) + ", q=" + std::to_string(num_ranges) +
            " random ranges, eps=0.1)",
        {"cold ms", "warm ms", "warm qps"});

    // Range fast path: cold pays planning + the data transform; warm
    // submits redraw noise and reconstruct only the queried ranges.
    Stopwatch watch;
    QueryResult cold = engine.Submit(request).ValueOrDie();
    const double range_cold_ms = watch.ElapsedMillis();
    if (!cold.range_fast_path) {
      std::fprintf(stderr, "range request missed the fast path\n");
      return 1;
    }
    watch.Restart();
    for (size_t i = 0; i < warm_range_submits; ++i) {
      engine.Submit(request).ValueOrDie();
    }
    const double range_warm_s = watch.ElapsedSeconds();
    const double range_warm_ms =
        1e3 * range_warm_s / static_cast<double>(warm_range_submits);
    bench::PrintRow("range fast path",
                    {bench::Fmt(range_cold_ms), bench::Fmt(range_warm_ms),
                     bench::Fmt(static_cast<double>(warm_range_submits) /
                                range_warm_s)});

    // Dense path: the same ranges forced through the full-histogram
    // adapter (plan already cached, so this measures the release).
    // One submit only — it is the O(k²·edges) detour being replaced.
    QueryRequest dense = request;
    dense.ranges.reset();
    dense.workload = IdentityWorkload(k * k);
    watch.Restart();
    QueryResult full = engine.Submit(dense).ValueOrDie();
    const double dense_ms = watch.ElapsedMillis();
    if (full.range_fast_path || !full.plan_cache_hit) {
      std::fprintf(stderr, "dense submit took an unexpected path\n");
      return 1;
    }
    bench::PrintRow("dense histogram release",
                    {"-", bench::Fmt(dense_ms),
                     bench::Fmt(1e3 / dense_ms)});

    if (dense_ms <= range_warm_ms) {
      std::fprintf(stderr,
                   "range fast path (%f ms) did not beat the dense "
                   "histogram release (%f ms)\n",
                   range_warm_ms, dense_ms);
      return 1;
    }
    std::printf("  range fast path speedup over dense release: %.1fx\n",
                dense_ms / range_warm_ms);
  }
  return 0;
}
