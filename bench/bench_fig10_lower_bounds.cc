// Figure 10: Li-Miklau SVD lower bounds under Blowfish policies
// (Corollary A.2), ε = 1, δ = 0.001.
//
//   (a) 1D ranges R_k: unbounded DP vs Gθ_k for θ in {1,2,4,8,16},
//       domain size up to 300.
//   (b) 2D ranges R_{k²}: unbounded DP, bounded DP, Gθ_{k²} for
//       θ in {1,2,3}, total domain size up to ~81.

#include "bench_util.h"
#include "core/lower_bounds.h"
#include "core/policy.h"

int main() {
  using namespace blowfish;
  using namespace blowfish::bench;

  const double eps = 1.0;
  const double delta = 0.001;

  // ---------------------------------------------------------- Fig 10a
  {
    const std::vector<size_t> domains =
        FullMode() ? std::vector<size_t>{25, 50, 100, 150, 200, 250, 300}
                   : std::vector<size_t>{25, 50, 100, 150, 200};
    const std::vector<size_t> thetas = {1, 2, 4, 8, 16};
    std::vector<std::string> cols{"unboundedDP"};
    for (size_t t : thetas) cols.push_back("theta=" + std::to_string(t));
    PrintHeader("Figure 10a: MINERROR lower bound, 1D ranges (eps=1, "
                "delta=.001); rows = domain size",
                cols);
    for (size_t k : domains) {
      const Matrix gram = RangeWorkloadGram1D(k);
      std::vector<std::string> cells;
      cells.push_back(
          Fmt(SvdLowerBound(gram, UnboundedDpPolicy(k), eps, delta)
                  .ValueOrDie()
                  .bound));
      for (size_t theta : thetas) {
        cells.push_back(
            Fmt(SvdLowerBound(gram, Theta1DPolicy(k, theta), eps, delta)
                    .ValueOrDie()
                    .bound));
      }
      PrintRow(std::to_string(k), cells);
    }
    std::printf(
        "\nPaper shape (10a): the unbounded-DP bound grows faster than "
        "every Gθ_k bound; curves order by θ.\n");
  }

  // ---------------------------------------------------------- Fig 10b
  {
    const std::vector<size_t> sides = {3, 4, 5, 6, 7, 8, 9};
    const std::vector<size_t> thetas = {1, 2, 3};
    std::vector<std::string> cols{"unboundedDP"};
    for (size_t t : thetas) cols.push_back("theta=" + std::to_string(t));
    cols.push_back("boundedDP");
    PrintHeader("Figure 10b: MINERROR lower bound, 2D ranges (eps=1, "
                "delta=.001); rows = total domain size k^2",
                cols);
    for (size_t side : sides) {
      const DomainShape domain({side, side});
      const Matrix gram = RangeWorkloadGramNd(domain);
      std::vector<std::string> cells;
      cells.push_back(
          Fmt(SvdLowerBound(gram, UnboundedDpPolicy(domain.size()), eps, delta)
                  .ValueOrDie()
                  .bound));
      for (size_t theta : thetas) {
        cells.push_back(
            Fmt(SvdLowerBound(gram, GridPolicy(domain, theta), eps, delta)
                    .ValueOrDie()
                    .bound));
      }
      cells.push_back(
          Fmt(SvdLowerBound(gram, BoundedDpPolicy(domain.size()), eps, delta)
                  .ValueOrDie()
                  .bound));
      PrintRow(std::to_string(domain.size()), cells);
    }
    std::printf(
        "\nPaper shape (10b): only theta=1 beats unbounded DP, but every "
        "theta beats bounded DP.\n");
  }
  return 0;
}
