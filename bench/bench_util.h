// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Protocol (Section 6): mean squared error per query, averaged over 5
// independent trials; ε-differentially-private baselines run at ε/2
// while (ε, G)-Blowfish mechanisms run at ε; ε sweeps over
// {0.001, 0.01, 0.1, 1}. Seed 2015 everywhere.
//
// Each harness prints the same rows/series as the corresponding paper
// table or figure. Set BLOWFISH_BENCH_FULL=1 for the paper's full
// parameter grid; the default trims the grid to keep a full bench
// sweep under a few minutes.

#ifndef BLOWFISH_BENCH_BENCH_UTIL_H_
#define BLOWFISH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mech/error.h"

namespace blowfish {
namespace bench {

inline bool FullMode() {
  const char* env = std::getenv("BLOWFISH_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline constexpr uint64_t kSeed = 2015;
inline constexpr size_t kTrials = 5;

inline std::vector<double> EpsilonGrid() {
  return {0.001, 0.01, 0.1, 1.0};
}

/// Formats a mean-squared error like the paper's log-scale plots.
inline std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

/// Prints one table row: name column padded to width 28.
inline void PrintRow(const std::string& name,
                     const std::vector<std::string>& cells) {
  std::printf("  %-30s", name.c_str());
  for (const std::string& c : cells) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cols) {
  std::printf("\n%s\n", title.c_str());
  PrintRow("", cols);
  std::printf("  %s\n", std::string(30 + 13 * cols.size(), '-').c_str());
}

}  // namespace bench
}  // namespace blowfish

#endif  // BLOWFISH_BENCH_BENCH_UTIL_H_
