// Figures 8c/8g and 9c/9g: 1D-Range (10,000 random range queries)
// under G¹_k on datasets A-G.
//
//   DP baselines (at ε/2): Privelet, Dawa
//   Blowfish (at ε):       Transformed + Laplace,
//                          Transformed + ConsistentEst,
//                          Trans + Dawa + Cons

#include "bench_util.h"
#include "core/data_dependent.h"
#include "data/generators.h"
#include "mech/dawa.h"
#include "mech/privelet.h"
#include "workload/builders.h"

int main() {
  using namespace blowfish;
  using namespace blowfish::bench;

  const std::vector<Dataset> datasets = MakeAllDatasets1D(kSeed);
  const size_t k = datasets[0].domain.size();
  const size_t num_queries = FullMode() ? 10000 : 2000;

  Rng query_rng(kSeed);
  const RangeWorkload workload =
      RandomRanges(DomainShape({k}), num_queries, &query_rng);

  const PriveletMechanism privelet{DomainShape({k})};
  const DawaMechanism dawa;
  const BlowfishMechanismPtr trans_laplace =
      MakeTransformedLaplace(k).ValueOrDie();
  const BlowfishMechanismPtr trans_consistent =
      MakeTransformedConsistent(k).ValueOrDie();
  const BlowfishMechanismPtr trans_dawa_cons =
      MakeTransformedDawa(k, /*with_consistency=*/true).ValueOrDie();

  struct Algo {
    std::string name;
    bool dp_baseline;
    EstimatorFn run;
  };
  const std::vector<Algo> algos = {
      {"Privelet (DP, eps/2)", true,
       [&](const Vector& x, double e, Rng* r) { return privelet.Run(x, e, r); }},
      {"Dawa (DP, eps/2)", true,
       [&](const Vector& x, double e, Rng* r) { return dawa.Run(x, e, r); }},
      {"Transformed + Laplace", false,
       [&](const Vector& x, double e, Rng* r) {
         return trans_laplace->Run(x, e, r);
       }},
      {"Transformed + ConsistentEst", false,
       [&](const Vector& x, double e, Rng* r) {
         return trans_consistent->Run(x, e, r);
       }},
      {"Trans + Dawa + Cons", false,
       [&](const Vector& x, double e, Rng* r) {
         return trans_dawa_cons->Run(x, e, r);
       }},
  };

  std::printf("Figures 8c/8g, 9c/9g: 1D-Range (%zu queries) under G^1_%zu\n",
              num_queries, k);
  for (double eps : EpsilonGrid()) {
    std::vector<std::string> cols;
    for (const Dataset& ds : datasets) cols.push_back(ds.name);
    PrintHeader("epsilon = " + Fmt(eps) +
                    "  (avg squared error per query, 5 trials)",
                cols);
    for (const Algo& algo : algos) {
      std::vector<std::string> cells;
      for (const Dataset& ds : datasets) {
        const double run_eps = algo.dp_baseline ? eps / 2.0 : eps;
        const ErrorStats stats = MeasureError(algo.run, workload, ds.counts,
                                              run_eps, kTrials, kSeed);
        cells.push_back(Fmt(stats.mean));
      }
      PrintRow(algo.name, cells);
    }
  }
  std::printf(
      "\nPaper shape: 2-3 orders of magnitude between every Blowfish "
      "variant and its DP counterpart (Section 6.1, 1D-Range).\n");
  return 0;
}
