// Figures 8b/8f and 9b/9f: the Hist workload (I_k) under G¹_k on
// datasets A-G, ε in {0.001, 0.01, 0.1, 1}.
//
//   DP baselines (at ε/2): Laplace, Dawa
//   Blowfish (at ε):       Transformed + Laplace,
//                          Transformed + ConsistentEst,
//                          Trans + Dawa + Cons
//
// Prints average squared error per query (5 trials), one table per ε.

#include <functional>

#include "bench_util.h"
#include "core/data_dependent.h"
#include "data/generators.h"
#include "mech/dawa.h"
#include "mech/laplace.h"
#include "workload/builders.h"

int main() {
  using namespace blowfish;
  using namespace blowfish::bench;

  const std::vector<Dataset> datasets = MakeAllDatasets1D(kSeed);
  const size_t k = datasets[0].domain.size();

  const LaplaceMechanism laplace;
  const DawaMechanism dawa;
  const BlowfishMechanismPtr trans_laplace =
      MakeTransformedLaplace(k).ValueOrDie();
  const BlowfishMechanismPtr trans_consistent =
      MakeTransformedConsistent(k).ValueOrDie();
  const BlowfishMechanismPtr trans_dawa_cons =
      MakeTransformedDawa(k, /*with_consistency=*/true).ValueOrDie();

  struct Algo {
    std::string name;
    bool dp_baseline;  // run at ε/2
    EstimatorFn run;
  };
  const std::vector<Algo> algos = {
      {"Laplace (DP, eps/2)", true,
       [&](const Vector& x, double e, Rng* r) { return laplace.Run(x, e, r); }},
      {"Dawa (DP, eps/2)", true,
       [&](const Vector& x, double e, Rng* r) { return dawa.Run(x, e, r); }},
      {"Transformed + Laplace", false,
       [&](const Vector& x, double e, Rng* r) {
         return trans_laplace->Run(x, e, r);
       }},
      {"Transformed + ConsistentEst", false,
       [&](const Vector& x, double e, Rng* r) {
         return trans_consistent->Run(x, e, r);
       }},
      {"Trans + Dawa + Cons", false,
       [&](const Vector& x, double e, Rng* r) {
         return trans_dawa_cons->Run(x, e, r);
       }},
  };

  std::printf("Figures 8b/8f, 9b/9f: Hist under G^1_%zu\n", k);
  for (double eps : EpsilonGrid()) {
    std::vector<std::string> cols;
    for (const Dataset& ds : datasets) cols.push_back(ds.name);
    PrintHeader("epsilon = " + Fmt(eps) +
                    "  (avg squared error per query, 5 trials)",
                cols);
    for (const Algo& algo : algos) {
      std::vector<std::string> cells;
      for (const Dataset& ds : datasets) {
        const RangeWorkload w = HistogramRanges(ds.domain);
        const double run_eps = algo.dp_baseline ? eps / 2.0 : eps;
        const ErrorStats stats =
            MeasureError(algo.run, w, ds.counts, run_eps, kTrials, kSeed);
        cells.push_back(Fmt(stats.mean));
      }
      PrintRow(algo.name, cells);
    }
  }
  std::printf(
      "\nPaper shape: Transformed+Laplace ~2x below Laplace everywhere; "
      "data-dependent variants win on sparse datasets (E, F, G) and at\n"
      "eps >= 0.1 a Blowfish variant wins on all but the sparsest "
      "datasets, where DAWA's clustering is stronger (Section 6.1).\n");
  return 0;
}
