// Dense-vs-range path equivalence through the engine. The range fast
// path answers a θ>=2 grid request by per-query slab reconstruction;
// the dense path materializes the full histogram release through the
// GridThetaHistogramAdapter. With the same engine seed both paths
// consume the identical noise stream, so:
//
//  * on the unit-cell workload the two paths are bit-identical (the
//    adapter IS the fast path evaluated at every cell), and
//  * on arbitrary range workloads both stay within the mechanism's
//    error bound of the exact answers and charge the same ε.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

constexpr size_t kGrid = 16;     // 16x16 domain
constexpr size_t kTheta = 4;     // block side 2
constexpr uint64_t kSeed = 2026;

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 9);
  return x;
}

std::unique_ptr<QueryEngine> MakeEngine() {
  EngineOptions options;
  options.seed = kSeed;
  auto engine = std::make_unique<QueryEngine>(options);
  engine
      ->RegisterPolicy("slab", GridPolicy(DomainShape({kGrid, kGrid}), kTheta),
                       Ramp(kGrid * kGrid), 1000.0)
      .Check();
  engine->OpenSession("s", 1000.0).Check();
  return engine;
}

TEST(RangePathEquivalence, UnitCellWorkloadIsBitIdenticalToTheDensePath) {
  const std::unique_ptr<QueryEngine> fast_engine = MakeEngine();
  const std::unique_ptr<QueryEngine> dense_engine = MakeEngine();

  QueryRequest fast;
  fast.session = "s";
  fast.policy = "slab";
  fast.ranges = HistogramRanges(DomainShape({kGrid, kGrid}));
  fast.epsilon = 1.0;
  const QueryResult via_ranges = fast_engine->Submit(fast).ValueOrDie();
  ASSERT_TRUE(via_ranges.range_fast_path);

  QueryRequest dense;
  dense.session = "s";
  dense.policy = "slab";
  dense.workload = IdentityWorkload(kGrid * kGrid);
  dense.epsilon = 1.0;
  const QueryResult via_histogram = dense_engine->Submit(dense).ValueOrDie();
  ASSERT_FALSE(via_histogram.range_fast_path);

  // Same seed, same submit stream, same slab releases: the fast path
  // evaluated at every unit cell IS the adapter's histogram release.
  ASSERT_EQ(via_ranges.answers.size(), via_histogram.answers.size());
  for (size_t i = 0; i < via_ranges.answers.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_ranges.answers[i], via_histogram.answers[i]) << i;
  }
  EXPECT_EQ(via_ranges.guarantee.neighbor_model,
            via_histogram.guarantee.neighbor_model);
}

TEST(RangePathEquivalence, BothPathsMeetTheErrorBoundAndChargeTheSameEps) {
  const std::unique_ptr<QueryEngine> fast_engine = MakeEngine();
  const std::unique_ptr<QueryEngine> dense_engine = MakeEngine();

  Rng workload_rng(7);
  const RangeWorkload ranges =
      RandomRanges(DomainShape({kGrid, kGrid}), 64, &workload_rng);
  const Vector exact = ranges.Answer(Ramp(kGrid * kGrid));
  const double epsilon = 8.0;

  QueryRequest fast;
  fast.session = "s";
  fast.policy = "slab";
  fast.ranges = ranges;
  fast.epsilon = epsilon;
  const QueryResult via_ranges = fast_engine->Submit(fast).ValueOrDie();
  ASSERT_TRUE(via_ranges.range_fast_path);

  QueryRequest dense;
  dense.session = "s";
  dense.policy = "slab";
  dense.workload = ranges.ToWorkload();
  dense.epsilon = epsilon;
  const QueryResult via_histogram = dense_engine->Submit(dense).ValueOrDie();
  ASSERT_FALSE(via_histogram.range_fast_path);

  // Both estimates must sit within the slab strategy's error bound of
  // the exact answers. The bound below is loose (the Theorem 5.6
  // polylog constant at k=16, θ=4, ε=8 is far smaller) but tight
  // enough to catch a broken reconstruction, whose error is O(n).
  constexpr double kErrorBound = 200.0;
  ASSERT_EQ(via_ranges.answers.size(), exact.size());
  ASSERT_EQ(via_histogram.answers.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_LT(std::abs(via_ranges.answers[i] - exact[i]), kErrorBound) << i;
    EXPECT_LT(std::abs(via_histogram.answers[i] - exact[i]), kErrorBound)
        << i;
  }

  // Identical privacy accounting on both paths: the submits charged
  // the same ε against the policy cap and the session grant, and both
  // state the same guarantee.
  EXPECT_EQ(*fast_engine->PolicyRemaining("slab"),
            *dense_engine->PolicyRemaining("slab"));
  EXPECT_EQ(*fast_engine->SessionRemaining("s"),
            *dense_engine->SessionRemaining("s"));
  EXPECT_EQ(via_ranges.guarantee.epsilon, via_histogram.guarantee.epsilon);
  EXPECT_EQ(via_ranges.guarantee.neighbor_model,
            via_histogram.guarantee.neighbor_model);
}

}  // namespace
}  // namespace blowfish
