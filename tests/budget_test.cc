#include <gtest/gtest.h>

#include "mech/budget.h"

namespace blowfish {
namespace {

TEST(Budget, SequentialSpendsAccumulate) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Spend(0.25, "stage 1").ok());
  EXPECT_TRUE(budget.Spend(0.75, "stage 2").ok());
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 2u);
}

TEST(Budget, OverspendRejectedWithoutSideEffects) {
  PrivacyBudget budget(0.5);
  EXPECT_TRUE(budget.Spend(0.4, "a").ok());
  const Status overspend = budget.Spend(0.2, "b");
  EXPECT_FALSE(overspend.ok());
  EXPECT_NEAR(budget.spent(), 0.4, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 1u);
}

TEST(Budget, ThirdSplitsToleratesRounding) {
  // The Lemma 4.5 pattern: three ε/3 spends must exactly fill ε.
  PrivacyBudget budget(1.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(budget.Spend(1.0 / 3.0, "eps/3").ok()) << i;
  }
  EXPECT_FALSE(budget.Spend(0.01, "extra").ok());
}

TEST(Budget, ParallelCountsOnce) {
  // The Theorem 5.4 pattern: 2(k-1) disjoint lines at full ε cost ε.
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.SpendParallel(1.0, 126, "privelet lines").ok());
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
  EXPECT_NE(budget.ToString().find("parallel x126"), std::string::npos);
}

TEST(Budget, LargeTotalsDoNotScaleTheSlack) {
  // Regression: the old bound total*(1+1e-9)+1e-9 admitted ~1 full
  // unit of ε past a 1e9 cap. The tolerance must stay at rounding
  // scale no matter how large the cap is.
  PrivacyBudget budget(1e9);
  EXPECT_TRUE(budget.Spend(1e9, "everything").ok());
  EXPECT_FALSE(budget.CanSpend(0.9));
  EXPECT_FALSE(budget.Spend(0.9, "smuggled past the cap").ok());
  EXPECT_FALSE(budget.CanSpend(1e-3));
  EXPECT_EQ(budget.ledger().size(), 1u);

  // Exact splits still fill a large cap despite rounding.
  PrivacyBudget split(1e9);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(split.Spend(1e9 / 3.0, "third").ok()) << i;
  }
  EXPECT_FALSE(split.CanSpend(1.0));
}

TEST(Budget, InvalidSpendsRejected) {
  PrivacyBudget budget(1.0);
  EXPECT_FALSE(budget.Spend(0.0, "zero").ok());
  EXPECT_FALSE(budget.Spend(-0.1, "negative").ok());
  EXPECT_FALSE(budget.SpendParallel(0.5, 0, "no parts").ok());
}

TEST(BudgetDeath, NonPositiveTotalRejected) {
  EXPECT_DEATH(PrivacyBudget(0.0), "CHECK failed");
}

TEST(Budget, DawaStyleSplitAudits) {
  // DAWA: ε1 = 0.25ε partition + ε2 = 0.75ε totals.
  PrivacyBudget budget(0.1);
  EXPECT_TRUE(budget.Spend(0.025, "stage-1 partition").ok());
  EXPECT_TRUE(budget.Spend(0.075, "stage-2 bucket totals").ok());
  const std::string audit = budget.ToString();
  EXPECT_NE(audit.find("stage-1 partition"), std::string::npos);
  EXPECT_NE(audit.find("stage-2 bucket totals"), std::string::npos);
}

}  // namespace
}  // namespace blowfish
