// Privelet / Haar wavelet mechanism (the paper's best data-independent
// ε-DP baseline for range queries, cited as [20]).

#include <cmath>

#include <gtest/gtest.h>

#include "mech/error.h"
#include "mech/privelet.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(Haar, ForwardInverseRoundTrip) {
  Vector v{4.0, 2.0, 5.0, 7.0, 1.0, 0.0, 3.0, 3.0};
  const Vector original = v;
  HaarForward(&v);
  HaarInverse(&v);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], original[i], 1e-12);
}

TEST(Haar, BaseCoefficientIsAverage) {
  Vector v{1.0, 3.0, 5.0, 7.0};
  HaarForward(&v);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
}

TEST(Haar, CoefficientChangeUnderUnitLeafChange) {
  // Changing one leaf by +1 changes the base coefficient by 1/n and
  // the height-ℓ ancestor by 1/2^ℓ — the sensitivity facts behind the
  // generalized weights.
  const size_t n = 16;
  Vector a(n, 0.0), b(n, 0.0);
  b[5] += 1.0;
  HaarForward(&a);
  HaarForward(&b);
  const Vector weights = HaarWeights(n);
  double weighted = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weighted += weights[i] * std::fabs(b[i] - a[i]);
  }
  // Generalized sensitivity = h + 1 = 5 for n = 16.
  EXPECT_NEAR(weighted, 5.0, 1e-12);
}

TEST(Haar, WeightsLayout) {
  const Vector w = HaarWeights(8);
  EXPECT_DOUBLE_EQ(w[0], 8.0);  // base
  EXPECT_DOUBLE_EQ(w[1], 8.0);  // height-3 root difference
  EXPECT_DOUBLE_EQ(w[2], 4.0);
  EXPECT_DOUBLE_EQ(w[3], 4.0);
  for (size_t i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(w[i], 2.0);
}

TEST(Privelet, GeneralizedSensitivity) {
  EXPECT_DOUBLE_EQ(PriveletMechanism(DomainShape({16})).GeneralizedSensitivity(),
                   5.0);
  EXPECT_DOUBLE_EQ(
      PriveletMechanism(DomainShape({16, 16})).GeneralizedSensitivity(), 25.0);
  // Non-power-of-two pads up: 100 -> 128, h+1 = 8.
  EXPECT_DOUBLE_EQ(PriveletMechanism(DomainShape({100})).GeneralizedSensitivity(),
                   8.0);
}

TEST(Privelet, UnbiasedPointEstimates) {
  const size_t k = 32;
  PriveletMechanism mech((DomainShape({k})));
  Vector x(k);
  for (size_t i = 0; i < k; ++i) x[i] = static_cast<double>(i % 7);
  Rng rng(5);
  Vector mean(k, 0.0);
  const size_t trials = 4000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech.Run(x, 1.0, &rng);
    for (size_t i = 0; i < k; ++i) mean[i] += est[i] / trials;
  }
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(mean[i], x[i], 1.5);
}

TEST(Privelet, RangeErrorPolylogInDomain) {
  // O(log³k/ε²) per range: going from k=64 to k=4096 (6x the log)
  // should grow error far less than the 64x domain growth.
  Rng qrng(9);
  Vector err;
  for (size_t k : {64u, 4096u}) {
    const DomainShape domain({k});
    const RangeWorkload w = RandomRanges(domain, 400, &qrng);
    Vector x(k, 1.0);
    PriveletMechanism mech{domain};
    const ErrorStats stats = MeasureError(
        [&](const Vector& db, double e, Rng* rng) {
          return mech.Run(db, e, rng);
        },
        w, x, 1.0, 8, 11);
    err.push_back(stats.mean);
  }
  EXPECT_LT(err[1] / err[0], 40.0);
  EXPECT_GT(err[1] / err[0], 1.0);
}

TEST(Privelet, TwoDimensionalRoundTripWithoutNoise) {
  // The 2D transform pipeline must be exactly invertible; verify by
  // checking unbiasedness at very high epsilon (noise ~ 0).
  const DomainShape domain({8, 8});
  PriveletMechanism mech{domain};
  Vector x(64);
  for (size_t i = 0; i < 64; ++i) x[i] = static_cast<double>(i);
  Rng rng(3);
  const Vector est = mech.Run(x, 1e9, &rng);
  for (size_t i = 0; i < 64; ++i) EXPECT_NEAR(est[i], x[i], 1e-5);
}

TEST(Privelet, NonPowerOfTwoDomainPreservesLogicalCells) {
  const DomainShape domain({10});
  PriveletMechanism mech{domain};
  Vector x{5, 4, 3, 2, 1, 1, 2, 3, 4, 5};
  Rng rng(4);
  const Vector est = mech.Run(x, 1e9, &rng);
  ASSERT_EQ(est.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(est[i], x[i], 1e-5);
}

TEST(PriveletParam, ErrorScalesAsInverseEpsilonSquared) {
  const DomainShape domain({128});
  PriveletMechanism mech{domain};
  Vector x(128, 2.0);
  Rng qrng(6);
  const RangeWorkload w = RandomRanges(domain, 200, &qrng);
  const auto run = [&](double eps) {
    return MeasureError(
               [&](const Vector& db, double e, Rng* rng) {
                 return mech.Run(db, e, rng);
               },
               w, x, eps, 12, 21)
        .mean;
  };
  const double e1 = run(0.1);
  const double e2 = run(1.0);
  // 10x epsilon => ~100x less error.
  EXPECT_NEAR(e1 / e2, 100.0, 60.0);
}

}  // namespace
}  // namespace blowfish
