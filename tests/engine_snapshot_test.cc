// Warm-restart snapshot store tests (engine/snapshot_store.h wired
// through QueryEngine). The contract under test:
//
//   * a restarted engine with a valid snapshot answers previously-warm
//     requests bit-identically to a cold engine with the same seed —
//     zero plan-cache misses, zero transform recomputation;
//   * the store is strictly fail-open: a missing store is a cold
//     start, a corrupt newest generation falls back to the previous
//     one, and when nothing valid remains the engine still serves —
//     corruption can make restart slower, never turn into a refusal;
//   * WriteSnapshot is atomic and prunes to keep_generations.
//
// The corruption matrix covers the five cases the issue names:
// missing store, torn header, truncated section, CRC mismatch
// mid-file, and a stale-but-valid older generation.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/policy.h"
#include "engine/query_engine.h"
#include "engine/snapshot_store.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n, 0.0);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 13);
  return x;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/bfsnap.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveTree(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

// Cycle graph: connected, not a tree, not a distance-threshold family,
// so the planner lands on the spanning-tree fallback — the strategy
// whose cold cost is the CertifySpanner pass the snapshot hint skips.
Policy RingPolicy(size_t k) {
  Graph g(k);
  for (size_t i = 0; i + 1 < k; ++i) g.AddEdge(i, i + 1);
  g.AddEdge(0, k - 1);
  return Policy{"C_" + std::to_string(k), DomainShape({k}), std::move(g)};
}

// One of every strategy family the planner knows, so the snapshot
// round-trips every precompute wire schema (tree/1, grid/1, slab/1)
// and every plan-hint shape (stretch-carrying and stretch-free).
struct Subject {
  const char* name;
  Policy policy;
  size_t domain;
};

std::vector<Subject> Subjects() {
  std::vector<Subject> subjects;
  subjects.push_back({"line", LinePolicy(16), 16});
  subjects.push_back({"theta", Theta1DPolicy(24, 3), 24});
  subjects.push_back({"grid", GridPolicy(DomainShape({6, 6}), 1), 36});
  subjects.push_back({"slab", GridPolicy(DomainShape({8, 8}), 4), 64});
  subjects.push_back({"ring", RingPolicy(12), 12});
  return subjects;
}

void RegisterAll(QueryEngine* engine) {
  for (Subject& subject : Subjects()) {
    ASSERT_TRUE(engine
                    ->RegisterPolicy(subject.name, std::move(subject.policy),
                                     Ramp(subject.domain), 1e6)
                    .ok());
  }
  ASSERT_TRUE(engine->OpenSession("s", 1e6).ok());
}

std::vector<QueryRequest> RequestSequence() {
  std::vector<QueryRequest> requests;
  for (const Subject& subject : Subjects()) {
    QueryRequest request;
    request.session = "s";
    request.policy = subject.name;
    request.workload = IdentityWorkload(subject.domain);
    request.epsilon = 0.01;
    requests.push_back(std::move(request));
  }
  return requests;
}

EngineOptions SnapOptions(const std::string& dir) {
  EngineOptions options;
  options.seed = 2015;
  options.snapshot_path = dir;
  return options;
}

// Builds a store with two warm generations and returns the directory.
// Generation 2 is the newest; both restore the same five policies.
std::string BuildTwoGenerationStore() {
  const std::string dir = MakeTempDir();
  QueryEngine engine(SnapOptions(dir));
  RegisterAll(&engine);
  for (const QueryRequest& request : RequestSequence()) {
    EXPECT_TRUE(engine.Submit(request).ok());
  }
  EXPECT_TRUE(engine.WriteSnapshot().ok());
  EXPECT_TRUE(engine.WriteSnapshot().ok());
  return dir;
}

TEST(SnapshotStoreTest, MissingStoreIsColdStartNotError) {
  const std::string dir = MakeTempDir();
  const std::string absent = dir + "/never-written";

  QueryEngine engine(SnapOptions(absent));
  EXPECT_FALSE(engine.snapshot_restore_stats().loaded);
  EXPECT_TRUE(engine.snapshot_restore_stats().skipped_files.empty());

  // Fail-open: the engine serves normally from cold.
  RegisterAll(&engine);
  Result<QueryResult> result = engine.Submit(RequestSequence()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  RemoveTree(absent);
  RemoveTree(dir);
}

TEST(SnapshotStoreTest, WarmRestartIsBitIdenticalWithZeroColdWork) {
  const std::string dir = MakeTempDir();
  size_t transforms_written = 0;

  {
    QueryEngine warm(SnapOptions(dir));
    RegisterAll(&warm);
    for (const QueryRequest& request : RequestSequence()) {
      ASSERT_TRUE(warm.Submit(request).ok());
    }
    transforms_written = warm.transform_cache_entries();
    ASSERT_TRUE(warm.WriteSnapshot().ok());
  }

  // Restarted engine, restored from the snapshot.
  QueryEngine restored(SnapOptions(dir));
  const QueryEngine::SnapshotRestoreStats& stats =
      restored.snapshot_restore_stats();
  EXPECT_TRUE(stats.loaded);
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.policies_restored, 5u);
  EXPECT_EQ(stats.plans_restored, 5u);
  EXPECT_EQ(stats.transforms_restored, transforms_written);
  EXPECT_EQ(stats.items_skipped, 0u);
  EXPECT_TRUE(stats.skipped_files.empty());
  ASSERT_TRUE(restored.OpenSession("s", 1e6).ok());

  // Cold reference: same seed, same registration order (so versions
  // and rng streams line up), no snapshot involved.
  EngineOptions cold_options;
  cold_options.seed = 2015;
  QueryEngine cold(cold_options);
  RegisterAll(&cold);

  // Every previously-warm request is warm *before* any submit: no
  // replanning, no transform recomputation left to do.
  const size_t restored_transforms = restored.transform_cache_entries();
  for (const QueryRequest& request : RequestSequence()) {
    EXPECT_TRUE(restored.IsWarm(request)) << request.policy;
  }

  for (const QueryRequest& request : RequestSequence()) {
    Result<QueryResult> warm_result = restored.Submit(request);
    Result<QueryResult> cold_result = cold.Submit(request);
    ASSERT_TRUE(warm_result.ok()) << warm_result.status().ToString();
    ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();
    const QueryResult& w = warm_result.ValueOrDie();
    const QueryResult& c = cold_result.ValueOrDie();
    EXPECT_EQ(w.plan_kind, c.plan_kind) << request.policy;
    EXPECT_TRUE(w.plan_cache_hit) << request.policy;
    ASSERT_EQ(w.answers.size(), c.answers.size()) << request.policy;
    for (size_t i = 0; i < w.answers.size(); ++i) {
      // Bit-identical, not approximately equal: transforms round trip
      // as IEEE bit patterns and noise streams depend only on (seed,
      // submit ordinal), which match across the two engines.
      EXPECT_EQ(w.answers[i], c.answers[i])
          << request.policy << " answer " << i;
    }
  }

  // Zero plan-cache misses and zero transform inserts across the
  // whole warm replay.
  EXPECT_EQ(restored.plan_cache_stats().misses, 0u);
  EXPECT_EQ(restored.plan_cache_stats().hits, RequestSequence().size());
  EXPECT_EQ(restored.transform_cache_entries(), restored_transforms);

  RemoveTree(dir);
}

TEST(SnapshotStoreTest, VerifyReportsCleanFile) {
  const std::string dir = BuildTwoGenerationStore();
  Result<std::vector<std::string>> files = snapshot::ListFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.ValueOrDie().size(), 2u);  // keep_generations = 2

  snapshot::VerifyReport report;
  ASSERT_TRUE(
      snapshot::Verify(dir + "/" + files.ValueOrDie().back(), &report).ok());
  EXPECT_TRUE(report.footer_ok);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.generation, 2u);
  EXPECT_EQ(report.policies, 5u);
  EXPECT_GT(report.transforms, 0u);
  EXPECT_EQ(report.valid_prefix_bytes,
            ReadFileBytes(dir + "/" + files.ValueOrDie().back()).size());

  RemoveTree(dir);
}

TEST(SnapshotStoreTest, WritePrunesToKeepGenerations) {
  const std::string dir = MakeTempDir();
  QueryEngine engine(SnapOptions(dir));
  RegisterAll(&engine);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(engine.WriteSnapshot().ok());

  Result<std::vector<std::string>> files = snapshot::ListFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.ValueOrDie().size(), 2u);
  EXPECT_EQ(files.ValueOrDie().back(), snapshot::FileName(4));
  EXPECT_EQ(files.ValueOrDie().front(), snapshot::FileName(3));

  RemoveTree(dir);
}

// ---- fail-open corruption matrix -----------------------------------

// Corrupts the newest generation with `mutate` and asserts the engine
// falls back to generation 1 and still serves warm.
void ExpectFallbackToPreviousGeneration(
    void (*mutate)(const std::string& newest_path)) {
  const std::string dir = BuildTwoGenerationStore();
  mutate(dir + "/" + snapshot::FileName(2));

  QueryEngine engine(SnapOptions(dir));
  const QueryEngine::SnapshotRestoreStats& stats =
      engine.snapshot_restore_stats();
  EXPECT_TRUE(stats.loaded);
  EXPECT_EQ(stats.generation, 1u);  // the stale-but-valid generation
  ASSERT_EQ(stats.skipped_files.size(), 1u);
  EXPECT_NE(stats.skipped_files[0].find(snapshot::FileName(2)),
            std::string::npos)
      << stats.skipped_files[0];
  EXPECT_EQ(stats.policies_restored, 5u);

  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  for (const QueryRequest& request : RequestSequence()) {
    EXPECT_TRUE(engine.IsWarm(request)) << request.policy;
    EXPECT_TRUE(engine.Submit(request).ok()) << request.policy;
  }
  EXPECT_EQ(engine.plan_cache_stats().misses, 0u);

  RemoveTree(dir);
}

TEST(SnapshotStoreTest, TornHeaderFallsBackToPreviousGeneration) {
  ExpectFallbackToPreviousGeneration([](const std::string& path) {
    std::vector<uint8_t> bytes = ReadFileBytes(path);
    ASSERT_GT(bytes.size(), 24u);
    bytes[10] ^= 0xff;  // inside the header's CRC-covered region
    WriteFileBytes(path, bytes);
  });
}

TEST(SnapshotStoreTest, TruncatedSectionFallsBackToPreviousGeneration) {
  ExpectFallbackToPreviousGeneration([](const std::string& path) {
    std::vector<uint8_t> bytes = ReadFileBytes(path);
    ASSERT_GT(bytes.size(), 64u);
    bytes.resize(bytes.size() / 2);  // tears mid-frame, loses the footer
    WriteFileBytes(path, bytes);
  });
}

TEST(SnapshotStoreTest, MidFileCrcMismatchFallsBackToPreviousGeneration) {
  ExpectFallbackToPreviousGeneration([](const std::string& path) {
    std::vector<uint8_t> bytes = ReadFileBytes(path);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x01;  // silent bit flip inside a frame
    WriteFileBytes(path, bytes);
  });
}

TEST(SnapshotStoreTest, AllGenerationsCorruptIsColdStartNotRefusal) {
  const std::string dir = BuildTwoGenerationStore();
  for (uint64_t gen = 1; gen <= 2; ++gen) {
    const std::string path = dir + "/" + snapshot::FileName(gen);
    std::vector<uint8_t> bytes = ReadFileBytes(path);
    ASSERT_GT(bytes.size(), 24u);
    bytes[3] ^= 0xff;  // break the magic
    WriteFileBytes(path, bytes);
  }

  QueryEngine engine(SnapOptions(dir));
  EXPECT_FALSE(engine.snapshot_restore_stats().loaded);
  EXPECT_EQ(engine.snapshot_restore_stats().skipped_files.size(), 2u);

  // Still a working engine: cold, never refusing.
  RegisterAll(&engine);
  Result<QueryResult> result = engine.Submit(RequestSequence()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  RemoveTree(dir);
}

TEST(SnapshotStoreTest, VerifyDistinguishesTornTailFromMidFileDamage) {
  const std::string dir = BuildTwoGenerationStore();
  const std::string newest = dir + "/" + snapshot::FileName(2);
  const std::vector<uint8_t> pristine = ReadFileBytes(newest);

  // Torn tail: valid prefix, footer gone.
  std::vector<uint8_t> torn = pristine;
  torn.resize(torn.size() - 5);
  WriteFileBytes(newest, torn);
  snapshot::VerifyReport torn_report;
  ASSERT_TRUE(snapshot::Verify(newest, &torn_report).ok());
  EXPECT_FALSE(torn_report.footer_ok);
  EXPECT_FALSE(torn_report.errors.empty());
  EXPECT_GT(torn_report.valid_prefix_bytes, 24u);

  // Mid-file damage: the valid prefix ends at the flipped frame.
  std::vector<uint8_t> flipped = pristine;
  flipped[40] ^= 0x01;
  WriteFileBytes(newest, flipped);
  snapshot::VerifyReport flip_report;
  ASSERT_TRUE(snapshot::Verify(newest, &flip_report).ok());
  EXPECT_FALSE(flip_report.errors.empty());
  EXPECT_LT(flip_report.valid_prefix_bytes, pristine.size());

  RemoveTree(dir);
}

}  // namespace
}  // namespace blowfish
