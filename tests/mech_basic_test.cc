// Laplace mechanism, matrix mechanism, and the error-measurement
// harness (Theorem 2.1, Equation 2, Definition 2.4).

#include <cmath>

#include <gtest/gtest.h>

#include "mech/error.h"
#include "mech/laplace.h"
#include "mech/matrix_mechanism.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(Laplace, UnbiasedAndVarianceMatchesTheory) {
  // Theorem 2.1 per-query error: 2 ∆² / ε² with ∆ = 1.
  LaplaceMechanism mech;
  const double eps = 0.5;
  const Vector x{10.0, 20.0, 30.0};
  Rng rng(1);
  double sq = 0.0;
  const size_t trials = 30000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech.Run(x, eps, &rng);
    for (size_t i = 0; i < x.size(); ++i) {
      sq += (est[i] - x[i]) * (est[i] - x[i]);
    }
  }
  const double per_query = sq / (trials * x.size());
  EXPECT_NEAR(per_query, 2.0 / (eps * eps), 0.3);
}

TEST(Laplace, TotalSquaredErrorFormula) {
  EXPECT_DOUBLE_EQ(LaplaceTotalSquaredError(10, 2.0, 0.5), 2.0 * 10 * 16.0);
}

TEST(MatrixMechanism, IdentityStrategyEqualsLaplace) {
  // With A = W = I the mechanism is exactly x + Lap(1/ε).
  const Matrix ident = Matrix::Identity(4);
  const MatrixMechanism mm =
      MatrixMechanism::Create(ident, ident).ValueOrDie();
  EXPECT_DOUBLE_EQ(mm.strategy_sensitivity(), 1.0);
  const double eps = 1.0;
  EXPECT_NEAR(mm.ExpectedTotalSquaredError(eps), 2.0 * 4, 1e-12);
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector noise{0.5, -0.5, 1.0, 0.0};
  const Vector out = mm.RunWithNoise(x, eps, noise);
  EXPECT_EQ(out, (Vector{1.5, 1.5, 4.0, 4.0}));
}

TEST(MatrixMechanism, CumulativeViaIdentityStrategy) {
  // Answering C_k via the identity strategy: W A+ = C_k, error
  // 2 (1/ε)² ||C_k||_F² — much better than Laplace on C_k directly,
  // whose sensitivity is k (the matrix-mechanism insight of [15]).
  const size_t k = 8;
  const Matrix c = CumulativeWorkload(k).matrix().ToDense();
  const MatrixMechanism mm =
      MatrixMechanism::Create(c, Matrix::Identity(k)).ValueOrDie();
  const double eps = 1.0;
  const double frob = c.FrobeniusNorm();
  EXPECT_NEAR(mm.ExpectedTotalSquaredError(eps), 2.0 * frob * frob, 1e-9);
  const double direct_laplace = LaplaceTotalSquaredError(k, k, eps);
  EXPECT_LT(mm.ExpectedTotalSquaredError(eps), direct_laplace);
}

TEST(MatrixMechanism, RejectsUnanswerableWorkload) {
  // Strategy spanning only the first coordinate cannot answer I_2.
  Matrix a{{1.0, 0.0}};
  EXPECT_FALSE(MatrixMechanism::Create(Matrix::Identity(2), a).ok());
}

TEST(MatrixMechanism, EmpiricalErrorMatchesAnalytic) {
  const size_t k = 6;
  const Matrix w = CumulativeWorkload(k).matrix().ToDense();
  const MatrixMechanism mm =
      MatrixMechanism::Create(w, Matrix::Identity(k)).ValueOrDie();
  const double eps = 1.0;
  Rng rng(77);
  const Vector x{1, 2, 3, 4, 5, 6};
  const Vector truth = w.MultiplyVector(x);
  double total_sq = 0.0;
  const size_t trials = 20000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mm.Run(x, eps, &rng);
    for (size_t i = 0; i < truth.size(); ++i) {
      total_sq += (est[i] - truth[i]) * (est[i] - truth[i]);
    }
  }
  EXPECT_NEAR(total_sq / trials, mm.ExpectedTotalSquaredError(eps),
              0.06 * mm.ExpectedTotalSquaredError(eps));
}

TEST(MeasureError, ZeroForExactEstimator) {
  const RangeWorkload w = AllRanges1D(8);
  const Vector x{1, 2, 3, 4, 5, 6, 7, 8};
  const ErrorStats stats = MeasureError(
      [](const Vector& db, double, Rng*) { return db; }, w, x, 1.0, 3, 42);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_EQ(stats.trials, 3u);
}

TEST(MeasureError, LaplaceOnHistogramWorkload) {
  // Per-query error of the Laplace mechanism on the identity workload
  // should be about 2/ε².
  const DomainShape domain({64});
  const RangeWorkload w = HistogramRanges(domain);
  Vector x(64, 5.0);
  LaplaceMechanism mech;
  const double eps = 1.0;
  const ErrorStats stats = MeasureError(
      [&](const Vector& db, double e, Rng* rng) {
        return mech.Run(db, e, rng);
      },
      w, x, eps, 50, 7);
  EXPECT_NEAR(stats.mean, 2.0, 0.5);
}

}  // namespace
}  // namespace blowfish
