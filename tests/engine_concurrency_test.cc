// Concurrency smoke tests: many threads submitting against one
// QueryEngine must never corrupt accounting (budgets conserve exactly,
// refusals are clean kOutOfRange) and must share cached plans.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 5);
  return x;
}

TEST(EngineConcurrency, ParallelSubmitsAcrossPoliciesAndSessions) {
  constexpr size_t kThreads = 4;
  constexpr size_t kSubmitsPerThread = 12;
  constexpr double kEps = 0.01;

  QueryEngine engine;
  const char* policies[] = {"line", "grid", "dp"};
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  ASSERT_TRUE(engine
                  .RegisterPolicy("grid", GridPolicy(DomainShape({4, 4}), 1),
                                  Ramp(16), 100.0)
                  .ok());
  ASSERT_TRUE(
      engine.RegisterPolicy("dp", UnboundedDpPolicy(16), Ramp(16), 100.0)
          .ok());

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &policies, &failures, t] {
      const std::string session = "session-" + std::to_string(t);
      if (!engine.OpenSession(session, 10.0).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kSubmitsPerThread; ++i) {
        QueryRequest request;
        request.session = session;
        request.policy = policies[(t + i) % 3];
        request.workload = IdentityWorkload(16);
        request.epsilon = kEps;
        const Result<QueryResult> result = engine.Submit(request);
        if (!result.ok() || result.ValueOrDie().answers.size() != 16u) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);

  // Accounting is exact despite interleaving: every session spent
  // kSubmitsPerThread * kEps, and the three policy caps jointly
  // absorbed all kThreads * kSubmitsPerThread spends.
  double session_spent = 0.0;
  for (size_t t = 0; t < kThreads; ++t) {
    const double remaining =
        *engine.SessionRemaining("session-" + std::to_string(t));
    session_spent += 10.0 - remaining;
  }
  EXPECT_NEAR(session_spent, kThreads * kSubmitsPerThread * kEps, 1e-9);
  double policy_spent = 0.0;
  for (const char* policy : policies) {
    policy_spent += 100.0 - *engine.PolicyRemaining(policy);
  }
  EXPECT_NEAR(policy_spent, kThreads * kSubmitsPerThread * kEps, 1e-9);

  // Each (policy, options) pair planned exactly once; repeats hit.
  const PlanCache::Stats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kSubmitsPerThread);
}

TEST(EngineConcurrency, ContendedCapAdmitsExactlyTheBudget) {
  constexpr size_t kThreads = 6;
  constexpr size_t kSubmitsPerThread = 10;
  constexpr double kEps = 0.15;  // 60 demanded, cap 1.0 admits 6

  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterPolicy("scarce", LinePolicy(8), Ramp(8), 1.0).ok());

  std::atomic<size_t> accepted{0};
  std::atomic<size_t> refused{0};
  std::atomic<size_t> unexpected{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string session = "s" + std::to_string(t);
      if (!engine.OpenSession(session, 100.0).ok()) {
        unexpected.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kSubmitsPerThread; ++i) {
        QueryRequest request;
        request.session = session;
        request.policy = "scarce";
        request.workload = IdentityWorkload(8);
        request.epsilon = kEps;
        const Result<QueryResult> result = engine.Submit(request);
        if (result.ok()) {
          accepted.fetch_add(1);
        } else if (result.status().code() == StatusCode::kOutOfRange) {
          refused.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // No interleaving may jointly overspend: floor(1.0 / 0.15) = 6
  // releases, every other submit refused with kOutOfRange.
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(accepted.load(), 6u);
  EXPECT_EQ(refused.load(), kThreads * kSubmitsPerThread - 6u);
  EXPECT_NEAR(*engine.PolicyRemaining("scarce"), 1.0 - 6 * kEps, 1e-9);
}

TEST(EngineConcurrency, SubmitsRaceRegistryChurn) {
  constexpr size_t kWriterRounds = 20;
  constexpr size_t kReaderThreads = 4;

  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterPolicy("stable", LinePolicy(16), Ramp(16), 1e6).ok());
  ASSERT_TRUE(
      engine.RegisterPolicy("churn", LinePolicy(16), Ramp(16), 1e6).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> unexpected{0};
  std::mutex first_mu;
  std::string first_error;
  const auto note = [&](const Status& status) {
    unexpected.fetch_add(1);
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_error.empty()) first_error = status.ToString();
  };

  std::thread writer([&] {
    for (size_t round = 0; round < kWriterRounds; ++round) {
      // Swap between two shapes so cached plans really go stale.
      Policy policy =
          (round % 2 == 0) ? Theta1DPolicy(16, 2) : LinePolicy(16);
      const Status replaced =
          engine.ReplacePolicy("churn", std::move(policy), Ramp(16), 1e6);
      if (!replaced.ok()) note(replaced);
      std::this_thread::yield();
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      const std::string session = "r" + std::to_string(t);
      if (!engine.OpenSession(session, 1e6).ok()) {
        unexpected.fetch_add(1);
        return;
      }
      while (!stop.load()) {
        for (const char* policy : {"stable", "churn"}) {
          QueryRequest request;
          request.session = session;
          request.policy = policy;
          request.workload = IdentityWorkload(16);
          request.epsilon = 0.1;
          const Result<QueryResult> result = engine.Submit(request);
          if (!result.ok()) {
            note(result.status());
          } else if (result.ValueOrDie().answers.size() != 16u) {
            note(Status::Internal("wrong answer size"));
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(unexpected.load(), 0u) << "first error: " << first_error;
  // The stable policy's plan survived the churn; every replaced
  // version planned at most once per option set.
  EXPECT_GT(engine.plan_cache_stats().hits, 0u);
}

TEST(EngineConcurrency, ColdPlanCacheMissesSingleFlight) {
  // All threads miss the same key at once; exactly one may pay the
  // planner cost, the rest must block and share its plan.
  constexpr size_t kThreads = 8;
  PlanCache cache;
  std::atomic<size_t> invocations{0};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      bool hit = false;
      const Result<std::shared_ptr<const Plan>> plan = cache.GetOrCompute(
          "key",
          [&]() -> Result<Plan> {
            invocations.fetch_add(1);
            // Hold the flight open long enough that every other
            // thread arrives while planning is in progress.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            Plan p;
            p.kind = "slow-plan";
            return p;
          },
          &hit);
      if (!plan.ok() || (*plan)->kind != "slow-plan") failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(invocations.load(), 1u) << "thundering herd ran the planner "
                                    << invocations.load() << " times";
  EXPECT_EQ(failures.load(), 0u);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(EngineConcurrency, FailedPlanIsSharedButNotCached) {
  PlanCache cache;
  std::atomic<size_t> invocations{0};
  bool hit = false;
  const auto failing = [&]() -> Result<Plan> {
    invocations.fetch_add(1);
    return Status::InvalidArgument("unplannable");
  };
  EXPECT_EQ(cache.GetOrCompute("k", failing, &hit).status().code(),
            StatusCode::kInvalidArgument);
  // The failure was not cached; the next caller retries the planner.
  EXPECT_EQ(cache.GetOrCompute("k", failing, &hit).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(invocations.load(), 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EngineConcurrency, ConcurrentCloseReportsClosedNotExhausted) {
  // A submit that charges successfully and then loses its ledgers to a
  // concurrent UnregisterPolicy must report `policy_remaining` as
  // nullopt ("ledger closed"), never as 0.0 ("exhausted") — the cap
  // here is huge, so any reported value must stay huge.
  constexpr size_t kRounds = 25;
  constexpr double kCap = 1e6;

  for (size_t round = 0; round < kRounds; ++round) {
    QueryEngine engine;
    ASSERT_TRUE(
        engine.RegisterPolicy("fleeting", LinePolicy(8), Ramp(8), kCap).ok());
    ASSERT_TRUE(engine.OpenSession("s", kCap).ok());

    std::atomic<bool> start{false};
    std::atomic<size_t> bad_reports{0};
    std::thread submitter([&] {
      QueryRequest request;
      request.session = "s";
      request.policy = "fleeting";
      request.workload = IdentityWorkload(8);
      request.epsilon = 0.001;
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        const Result<QueryResult> result = engine.Submit(request);
        if (!result.ok()) break;  // policy gone: expected after the race
        const QueryResult& r = result.ValueOrDie();
        // Session stays open the whole time: always a (huge) value.
        if (!r.session_remaining.has_value() ||
            *r.session_remaining < kCap / 2) {
          bad_reports.fetch_add(1);
        }
        // Policy ledger may close mid-flight: nullopt is the only
        // legal way to say so; a present value must still be huge.
        if (r.policy_remaining.has_value() &&
            *r.policy_remaining < kCap / 2) {
          bad_reports.fetch_add(1);
        }
      }
    });
    start.store(true);
    std::this_thread::yield();
    ASSERT_TRUE(engine.UnregisterPolicy("fleeting").ok());
    submitter.join();
    ASSERT_EQ(bad_reports.load(), 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace blowfish
