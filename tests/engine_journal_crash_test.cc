// Crash-replay property test: a child process floods journaled
// charges through a real engine and is SIGKILLed mid-flood; the
// parent then recovers the journal and checks the only invariant that
// matters after a crash:
//
//   acked spend  <=  recovered spend  <=  acked spend + in-flight
//
// Every charge the child acknowledged (Submit returned OK, one ack
// byte on the pipe) was write-ahead journaled before it committed, so
// recovery can never land BELOW the acked sum — that would refill
// budget. And since the child runs one submit at a time, at most one
// journaled charge can be missing its ack (killed between fsync and
// pipe write), which bounds recovery from above. The kill lands mid-
// append often enough that recovery also exercises the torn-tail
// repair on real SIGKILL file states, across two crash/recover
// rounds (round two re-opens the same journal and keeps spending).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "engine/ledger_journal.h"
#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

constexpr double kEpsilonPerCharge = 0.001;
constexpr int kAcksBeforeKill = 40;

Vector Ramp(size_t n) {
  Vector x(n, 0.0);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 13);
  return x;
}

// Child: open the journaled engine on `dir`, then submit charges
// forever, writing one ack byte per admitted charge. Runs until
// killed; never returns.
[[noreturn]] void FloodUntilKilled(const std::string& dir, int ack_fd) {
  EngineOptions options;
  options.seed = 99;
  options.journal_path = dir;
  options.journal_allow_torn_tail = true;  // round 2 reopens a kill site
  options.journal_segment_bytes = 1u << 14;  // rotate + checkpoint often
  auto opened = QueryEngine::Open(options);
  if (!opened.ok()) _exit(3);
  QueryEngine& engine = **opened;
  if (!engine.RegisterPolicy("flood", LinePolicy(16), Ramp(16), 1e6).ok()) {
    _exit(4);
  }
  if (!engine.OpenSession("alice", 1e6).ok()) _exit(5);

  QueryRequest request;
  request.session = "alice";
  request.policy = "flood";
  request.workload = IdentityWorkload(16);
  request.epsilon = kEpsilonPerCharge;
  for (uint64_t i = 0; i < 1000000; ++i) {  // backstop; the kill comes first
    Result<QueryResult> result = engine.Submit(request);
    if (!result.ok()) _exit(6);
    const char ack = 'a';
    if (::write(ack_fd, &ack, 1) != 1) _exit(7);
  }
  _exit(8);
}

// Runs one crash round: fork, flood, kill after `kAcksBeforeKill`
// acks, drain the pipe, and return the total acked charge count.
uint64_t CrashRound(const std::string& dir) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return 0;
  }
  if (pid == 0) {
    ::close(fds[0]);
    FloodUntilKilled(dir, fds[1]);  // never returns
  }
  ::close(fds[1]);

  uint64_t acked = 0;
  char buf[256];
  while (acked < kAcksBeforeKill) {
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n <= 0) break;  // child died early; the exit code says why
    acked += static_cast<uint64_t>(n);
  }
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  EXPECT_TRUE(WIFSIGNALED(wstatus))
      << "child exited " << WEXITSTATUS(wstatus) << " instead of being killed";

  // Acks the child wrote before dying but after we stopped counting
  // are still admitted charges — drain to EOF so the lower bound is
  // the true ack total.
  for (;;) {
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n <= 0) break;
    acked += static_cast<uint64_t>(n);
  }
  ::close(fds[0]);
  return acked;
}

// Replays the journal and returns session/alice's recovered spend
// (0.0 if the journal holds no spends for it yet).
double RecoverSpent(const std::string& dir) {
  JournalOptions options;
  options.dir = dir;
  options.allow_torn_tail = true;  // SIGKILL mid-append is expected
  auto journal = LedgerJournal::Open(options);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  if (!journal.ok()) return -1.0;
  RecoveredLedger led;
  if (!(*journal)->TakeRecovered("session/alice", &led)) return 0.0;
  return led.spent;
}

// The ε sum replay computes: the same partial-sum chain, so bounds
// compare exactly, not approximately.
double SumOfCharges(uint64_t count, double start) {
  double spent = start;
  for (uint64_t i = 0; i < count; ++i) spent += kEpsilonPerCharge;
  return spent;
}

TEST(JournalCrashTest, RecoveredSpendBracketsAckedSpendAcrossCrashes) {
  char tmpl[] = "/tmp/bfcrash.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  uint64_t acked_total = 0;
  for (int round = 0; round < 2; ++round) {
    acked_total += CrashRound(dir);
    const double recovered = RecoverSpent(dir);
    ASSERT_GE(recovered, 0.0) << "recovery failed in round " << round;

    // Never below what was admitted: a crash must not refill budget.
    // The replayed chain and SumOfCharges are the same float ops in
    // the same order, so >= is exact, no tolerance needed.
    EXPECT_GE(recovered, SumOfCharges(acked_total, 0.0))
        << "round " << round << ": recovery lost acked spends";
    // At most one single-threaded charge per round can be journaled
    // but un-acked (killed between fsync and the ack write).
    EXPECT_LE(recovered, SumOfCharges(acked_total + round + 1, 0.0))
        << "round " << round << ": recovery invented spends";
  }
  EXPECT_GE(acked_total, 2u * kAcksBeforeKill);

  // Cleanup.
  JournalScanReport report;
  if (LedgerJournal::Scan(dir, PosixJournalIo(), &report).ok()) {
    for (const auto& segment : report.segments) {
      (void)PosixJournalIo()->Remove(dir + "/" + segment.name);
    }
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace blowfish
