// Concurrency battery for the async submission pipeline
// (engine/async_engine.h): single-worker determinism against the
// sequential engine, exact ledger conservation under a multi-thread
// flood, cold/warm lane isolation with plan single-flight,
// cancellation-on-destruction, and deterministic backpressure for
// both SubmitAsync and SubmitBatchAsync. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "engine/async_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

using FutureResult = std::future<Result<QueryResult>>;

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 7);
  return x;
}

EngineOptions AsyncOptions(uint64_t seed, size_t workers,
                           size_t capacity = 1024,
                           QueueFullPolicy full = QueueFullPolicy::kReject) {
  EngineOptions options;
  options.seed = seed;
  options.async_workers = workers;
  options.async_queue_capacity = capacity;
  options.async_queue_full = full;
  return options;
}

QueryRequest MakeRequest(const std::string& session,
                         const std::string& policy, size_t domain,
                         double epsilon) {
  QueryRequest request;
  request.session = session;
  request.policy = policy;
  request.workload = IdentityWorkload(domain);
  request.epsilon = epsilon;
  return request;
}

bool Pending(const FutureResult& future) {
  return future.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready;
}

TEST(EngineAsync, SingleWorkerMatchesSequentialBitwise) {
  // One worker + a paused queue: every request is enqueued before any
  // runs, so the worker drains them in submission order and the
  // engine assigns the same per-submit noise streams a sequential
  // Submit loop would — results must be bit-identical.
  constexpr uint64_t kSeed = 20150731;
  constexpr size_t kDomain = 64;

  AsyncQueryEngine async(AsyncOptions(kSeed, /*workers=*/1));
  QueryEngine sequential(AsyncOptions(kSeed, 1));
  for (QueryEngine* engine : {&async.engine(), &sequential}) {
    ASSERT_TRUE(engine
                    ->RegisterPolicy("line", LinePolicy(kDomain),
                                     Ramp(kDomain), 1e6)
                    .ok());
    ASSERT_TRUE(engine->OpenSession("s", 1e6).ok());
  }

  const QueryRequest proto = MakeRequest("s", "line", kDomain, 0.1);
  async.Pause();
  std::vector<FutureResult> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(async.SubmitAsync(proto));
  std::vector<FutureResult> batch_futures =
      async.SubmitBatchAsync({proto, proto, proto});
  for (int i = 0; i < 3; ++i) futures.push_back(async.SubmitAsync(proto));
  async.Resume();

  std::vector<Vector> async_answers;
  for (size_t i = 0; i < 6; ++i) {
    async_answers.push_back(futures[i].get().ValueOrDie().answers);
  }
  for (FutureResult& future : batch_futures) {
    async_answers.push_back(future.get().ValueOrDie().answers);
  }
  for (size_t i = 6; i < futures.size(); ++i) {
    async_answers.push_back(futures[i].get().ValueOrDie().answers);
  }

  std::vector<Vector> sequential_answers;
  for (int i = 0; i < 6; ++i) {
    sequential_answers.push_back(
        sequential.Submit(proto).ValueOrDie().answers);
  }
  for (const Result<QueryResult>& result :
       sequential.SubmitBatch({proto, proto, proto})) {
    sequential_answers.push_back(result.ValueOrDie().answers);
  }
  for (int i = 0; i < 3; ++i) {
    sequential_answers.push_back(
        sequential.Submit(proto).ValueOrDie().answers);
  }

  ASSERT_EQ(async_answers.size(), sequential_answers.size());
  for (size_t i = 0; i < async_answers.size(); ++i) {
    ASSERT_EQ(async_answers[i].size(), sequential_answers[i].size());
    for (size_t j = 0; j < async_answers[i].size(); ++j) {
      // Bitwise equality: same seed, same stream, same noise.
      EXPECT_EQ(async_answers[i][j], sequential_answers[i][j])
          << "submission " << i << " entry " << j;
    }
  }
}

TEST(EngineAsync, FloodConservesLedgersExactly) {
  // 16 workers, 4 submitter threads hammering one scarce policy cap:
  // afterwards the cap balance must be exactly cap - n_admitted * eps
  // (no over- or under-charge from any interleaving), every future
  // must resolve exactly once, and every failure must be a clean
  // kOutOfRange.
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 50;
  constexpr double kEps = 0.01;
  constexpr double kCap = 0.8;  // admits 80 of the 200 demanded

  AsyncQueryEngine async(AsyncOptions(7, /*workers=*/16));
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(
      engine.RegisterPolicy("scarce", LinePolicy(16), Ramp(16), kCap).ok());
  std::vector<QueryRequest> protos(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    const std::string session = "s" + std::to_string(t);
    ASSERT_TRUE(engine.OpenSession(session, 100.0).ok());
    protos[t] = MakeRequest(session, "scarce", 16, kEps);
    if (t % 2 == 0) {
      // Half the threads exercise the handle-carrying path.
      protos[t].session_handle = engine.ResolveSession(session).ValueOrDie();
      protos[t].policy_handle = engine.ResolvePolicy("scarce").ValueOrDie();
    }
  }

  std::vector<std::vector<FutureResult>> futures(kThreads);
  {
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        futures[t].reserve(kPerThread);
        for (size_t i = 0; i < kPerThread; ++i) {
          futures[t].push_back(async.SubmitAsync(protos[t]));
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
  }

  size_t admitted = 0, refused = 0;
  std::vector<size_t> admitted_per_session(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    for (FutureResult& future : futures[t]) {
      ASSERT_TRUE(future.valid());  // resolves exactly once, via get()
      const Result<QueryResult> result = future.get();
      if (result.ok()) {
        ++admitted;
        ++admitted_per_session[t];
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kOutOfRange)
            << result.status().ToString();
        ++refused;
      }
    }
  }
  EXPECT_EQ(admitted + refused, kThreads * kPerThread);
  EXPECT_EQ(admitted, 80u);

  // cap - sum(eps admitted), exactly.
  EXPECT_NEAR(*engine.PolicyRemaining("scarce"),
              kCap - static_cast<double>(admitted) * kEps, 1e-9);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_NEAR(*engine.SessionRemaining("s" + std::to_string(t)),
                100.0 - static_cast<double>(admitted_per_session[t]) * kEps,
                1e-9);
  }

  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.warm.completed + stats.cold.completed,
            kThreads * kPerThread);
  EXPECT_EQ(stats.warm.depth + stats.cold.depth, 0u);
}

TEST(EngineAsync, ColdPlanDoesNotBlockWarmLane) {
  // A ~100ms spanner certification runs in the cold lane while a warm
  // flood flows: every warm future must resolve while every cold
  // future is still pending, the queued same-key cold requests must
  // coalesce behind the one in-flight plan (PlanCache sees exactly
  // one miss for the policy), and parked followers must resolve too.
  constexpr size_t kColdDomain = 4096;  // Theta1D th=4: ~100ms plan
  constexpr size_t kWarmDomain = 64;
  constexpr size_t kWarmFlood = 100;

  AsyncQueryEngine async(AsyncOptions(11, /*workers=*/4));
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(engine
                  .RegisterPolicy("slow", Theta1DPolicy(kColdDomain, 4),
                                  Ramp(kColdDomain), 1e6)
                  .ok());
  ASSERT_TRUE(engine
                  .RegisterPolicy("fast", LinePolicy(kWarmDomain),
                                  Ramp(kWarmDomain), 1e6)
                  .ok());
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());

  // Warm the fast policy synchronously (1 plan miss), so the flood is
  // classified warm.
  ASSERT_TRUE(
      engine.Submit(MakeRequest("s", "fast", kWarmDomain, 0.001)).ok());
  ASSERT_EQ(engine.plan_cache_stats().misses, 1u);

  const QueryRequest cold_proto =
      MakeRequest("s", "slow", kColdDomain, 0.001);
  std::vector<FutureResult> cold_futures;
  for (int i = 0; i < 4; ++i) {
    cold_futures.push_back(async.SubmitAsync(cold_proto));
  }

  const QueryRequest warm_proto =
      MakeRequest("s", "fast", kWarmDomain, 0.001);
  std::vector<FutureResult> warm_futures;
  warm_futures.reserve(kWarmFlood);
  for (size_t i = 0; i < kWarmFlood; ++i) {
    warm_futures.push_back(async.SubmitAsync(warm_proto));
  }
  for (FutureResult& future : warm_futures) {
    EXPECT_TRUE(future.get().ok());
  }
  // The whole warm flood (~ms) finished inside the cold plan's
  // ~100ms window: no warm future ever waited on the cold lane.
  for (const FutureResult& future : cold_futures) {
    EXPECT_TRUE(Pending(future))
        << "a cold future resolved before the warm flood drained";
  }
  for (FutureResult& future : cold_futures) {
    EXPECT_TRUE(future.get().ok());
  }

  // Single-flight: 4 queued cold requests, 1 plan. (2 misses total:
  // "fast" warming + "slow".)
  const PlanCache::Stats plan_stats = engine.plan_cache_stats();
  EXPECT_EQ(plan_stats.misses, 2u);
  const AsyncStats stats = async.stats();
  EXPECT_GE(stats.cold_plans_coalesced, 1u);
  EXPECT_EQ(stats.cold.enqueued, 4u);
  EXPECT_EQ(stats.cold.completed, 4u);
  EXPECT_EQ(stats.warm.completed, kWarmFlood);
}

TEST(EngineAsync, DestructionCancelsQueuedFutures) {
  // Destroying the engine with queued work resolves every pending
  // future exactly once with kCancelled — no leaks, no deadlock (the
  // test finishing is the deadlock proof).
  std::vector<FutureResult> queued;
  {
    AsyncQueryEngine async(AsyncOptions(3, /*workers=*/1));
    ASSERT_TRUE(async.engine()
                    .RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6)
                    .ok());
    ASSERT_TRUE(async.engine().OpenSession("s", 1e6).ok());
    async.Pause();
    for (int i = 0; i < 8; ++i) {
      queued.push_back(async.SubmitAsync(MakeRequest("s", "p", 16, 0.01)));
    }
    const AsyncStats stats = async.stats();
    ASSERT_EQ(stats.warm.depth + stats.cold.depth, 8u);
  }  // destructor: kCancelPending
  for (FutureResult& future : queued) {
    ASSERT_TRUE(future.valid());
    const Result<QueryResult> result = future.get();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status().ToString();
  }
}

TEST(EngineAsync, DestructionLetsInFlightTaskFinishAndCancelsRest) {
  // A slow cold plan is mid-flight when the engine dies: the in-flight
  // task completes normally (its charge is real — the answer must be
  // delivered), the queued tasks behind it are cancelled.
  AsyncStats stats;
  FutureResult inflight;
  std::vector<FutureResult> queued;
  {
    AsyncQueryEngine async(AsyncOptions(5, /*workers=*/1));
    QueryEngine& engine = async.engine();
    ASSERT_TRUE(engine
                    .RegisterPolicy("slow", Theta1DPolicy(4096, 4),
                                    Ramp(4096), 1e6)
                    .ok());
    ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
    inflight = async.SubmitAsync(MakeRequest("s", "slow", 4096, 0.01));
    // Give the single worker time to pop the cold task; the queue
    // behind it then cannot start (cold plan ~100ms).
    while (async.stats().cold_in_flight == 0 && Pending(inflight)) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 5; ++i) {
      queued.push_back(async.SubmitAsync(MakeRequest("s", "slow", 4096, 0.01)));
    }
    stats = async.stats();
  }  // destructor while the plan runs
  ASSERT_TRUE(inflight.valid());
  EXPECT_TRUE(inflight.get().ok());
  size_t cancelled = 0;
  for (FutureResult& future : queued) {
    const Result<QueryResult> result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
      ++cancelled;
    }
  }
  // The worker was busy for the cold plan's ~100ms; the 5 queued
  // tasks behind it die with the engine. (>= tolerates the in-flight
  // race where the worker slipped one more task in.)
  EXPECT_GE(cancelled, 4u);
}

TEST(EngineAsync, ShutdownRacesParkedColdFollowers) {
  // Repeatedly destroy the engine while a cold leader is mid-plan
  // with same-key followers parked behind it: whichever side of the
  // FinishCold/Shutdown race wins, every future must still resolve
  // exactly once (ok or kCancelled — a broken promise would throw
  // std::future_error in get()).
  constexpr size_t kRounds = 25;
  for (size_t round = 0; round < kRounds; ++round) {
    std::vector<FutureResult> futures;
    {
      AsyncQueryEngine async(AsyncOptions(round, /*workers=*/4));
      ASSERT_TRUE(async.engine()
                      .RegisterPolicy("slow", Theta1DPolicy(512, 4),
                                      Ramp(512), 1e6)
                      .ok());
      ASSERT_TRUE(async.engine().OpenSession("s", 1e6).ok());
      for (int i = 0; i < 6; ++i) {
        futures.push_back(
            async.SubmitAsync(MakeRequest("s", "slow", 512, 0.001)));
      }
      // Vary the destruction point across the leader's ~2.5ms plan.
      for (size_t spin = 0; spin < round * 50; ++spin) {
        std::this_thread::yield();
      }
    }  // destructor races the in-flight plan and its parked followers
    for (FutureResult& future : futures) {
      ASSERT_TRUE(future.valid());
      const Result<QueryResult> result = future.get();
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
            << "round " << round << ": " << result.status().ToString();
      }
    }
  }
}

TEST(EngineAsync, BackpressureRejectsDeterministically) {
  // capacity=4, paused worker: the 5th submission must be refused
  // with kUnavailable (already-resolved future), a batch straddling
  // the remaining capacity must be wholly refused, and everything
  // accepted must still resolve after Resume().
  AsyncQueryEngine async(AsyncOptions(13, /*workers=*/1, /*capacity=*/4));
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(
      engine.RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6).ok());
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  // Warm synchronously so async tasks take the warm lane.
  ASSERT_TRUE(engine.Submit(MakeRequest("s", "p", 16, 0.01)).ok());

  const QueryRequest proto = MakeRequest("s", "p", 16, 0.01);
  async.Pause();
  std::vector<FutureResult> accepted;
  for (int i = 0; i < 3; ++i) accepted.push_back(async.SubmitAsync(proto));

  // 3 of 4 slots used: a batch of 2 straddles the boundary and is
  // wholly rejected — both futures ready with kUnavailable.
  std::vector<FutureResult> straddle =
      async.SubmitBatchAsync({proto, proto});
  ASSERT_EQ(straddle.size(), 2u);
  for (FutureResult& future : straddle) {
    ASSERT_FALSE(Pending(future));
    EXPECT_EQ(future.get().status().code(), StatusCode::kUnavailable);
  }
  // A batch of exactly the remaining capacity fits.
  std::vector<FutureResult> fits = async.SubmitBatchAsync({proto});
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_TRUE(Pending(fits[0]));

  // Queue now full: single submits are refused, deterministically.
  FutureResult overflow = async.SubmitAsync(proto);
  ASSERT_FALSE(Pending(overflow));
  EXPECT_EQ(overflow.get().status().code(), StatusCode::kUnavailable);
  // A batch larger than the whole queue can never be admitted.
  std::vector<FutureResult> too_big = async.SubmitBatchAsync(
      std::vector<QueryRequest>(5, proto));
  for (FutureResult& future : too_big) {
    EXPECT_EQ(future.get().status().code(), StatusCode::kUnavailable);
  }

  AsyncStats stats = async.stats();
  EXPECT_EQ(stats.warm.depth, 4u);
  EXPECT_EQ(stats.warm.peak_depth, 4u);
  EXPECT_EQ(stats.warm.rejected + stats.cold.rejected, 3u);

  async.Resume();
  for (FutureResult& future : accepted) EXPECT_TRUE(future.get().ok());
  EXPECT_TRUE(fits[0].get().ok());
}

TEST(EngineAsync, BackpressureBlockModeWaitsForSpace) {
  // QueueFullPolicy::kBlock: a submitter against a full queue blocks
  // until a worker frees a slot, then its request is accepted and
  // resolves normally.
  AsyncQueryEngine async(AsyncOptions(17, /*workers=*/1, /*capacity=*/2,
                                      QueueFullPolicy::kBlock));
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(
      engine.RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6).ok());
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("s", "p", 16, 0.01)).ok());

  const QueryRequest proto = MakeRequest("s", "p", 16, 0.01);
  async.Pause();
  std::vector<FutureResult> accepted;
  for (int i = 0; i < 2; ++i) accepted.push_back(async.SubmitAsync(proto));

  std::atomic<bool> returned{false};
  FutureResult blocked_future;
  std::thread blocked([&] {
    // Queue is full: this call blocks until Resume() drains a slot.
    blocked_future = async.SubmitAsync(proto);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load()) << "kBlock submitter did not block";

  async.Resume();
  blocked.join();
  EXPECT_TRUE(returned.load());
  for (FutureResult& future : accepted) EXPECT_TRUE(future.get().ok());
  EXPECT_TRUE(blocked_future.get().ok());
}

TEST(EngineAsync, ShutdownWakesBlockedSubmitterWithCancelled) {
  // A submitter blocked on a full queue during shutdown must not
  // deadlock the destructor: it wakes with a kCancelled future.
  std::atomic<bool> returned{false};
  FutureResult blocked_future;
  std::thread blocked;
  std::vector<FutureResult> queued;
  {
    AsyncQueryEngine async(AsyncOptions(19, /*workers=*/1, /*capacity=*/1,
                                        QueueFullPolicy::kBlock));
    ASSERT_TRUE(async.engine()
                    .RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6)
                    .ok());
    ASSERT_TRUE(async.engine().OpenSession("s", 1e6).ok());
    async.Pause();
    queued.push_back(async.SubmitAsync(MakeRequest("s", "p", 16, 0.01)));
    blocked = std::thread([&] {
      blocked_future = async.SubmitAsync(MakeRequest("s", "p", 16, 0.01));
      returned.store(true);
    });
    // Ensure the submitter reached the blocking wait before shutdown.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // destructor cancels the queue and wakes the blocked submitter
  blocked.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(blocked_future.get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued[0].get().status().code(), StatusCode::kCancelled);
}

TEST(EngineAsync, BatchAsyncKeepsGroupedChargeSemantics) {
  // SubmitBatchAsync runs through SubmitBatch: a declared
  // disjoint-domain batch charges max(eps) once, not sum(eps).
  AsyncQueryEngine async(AsyncOptions(23, /*workers=*/2));
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(
      engine.RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6).ok());
  ASSERT_TRUE(engine.OpenSession("s", 10.0).ok());

  std::vector<QueryRequest> batch(3, MakeRequest("s", "p", 16, 0.0));
  batch[0].epsilon = 0.3;
  batch[1].epsilon = 0.5;
  batch[2].epsilon = 0.2;
  BatchOptions disjoint;
  disjoint.disjoint_domains = true;
  std::vector<FutureResult> futures =
      async.SubmitBatchAsync(std::move(batch), disjoint);
  for (FutureResult& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_NEAR(*engine.SessionRemaining("s"), 10.0 - 0.5, 1e-9);
}

TEST(EngineAsync, DrainRunsTheQueueDry) {
  AsyncQueryEngine async(AsyncOptions(29, /*workers=*/2));
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(
      engine.RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6).ok());
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  std::vector<FutureResult> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(async.SubmitAsync(MakeRequest("s", "p", 16, 0.001)));
  }
  async.Drain();
  for (FutureResult& future : futures) {
    ASSERT_FALSE(Pending(future)) << "Drain returned with work pending";
    EXPECT_TRUE(future.get().ok());
  }
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.warm.depth + stats.cold.depth, 0u);
  EXPECT_EQ(stats.warm.completed + stats.cold.completed, 32u);
}

}  // namespace
}  // namespace blowfish
