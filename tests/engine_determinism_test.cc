// Determinism guarantees of the serving layer: a seeded engine derives
// every release's randomness from (engine seed, submit counter), so
// two engines built the same way and driven through the same submit
// order must produce bit-identical answers — regardless of whether
// requests travel the string-id or the handle fast path, and across
// Submit vs SubmitBatch. This pins the per-submit stream derivation
// through the sharded/handle refactor.

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 7);
  return x;
}

EngineOptions Seeded(uint64_t seed) {
  EngineOptions options;
  options.seed = seed;
  return options;
}

void RegisterAll(QueryEngine* engine) {
  ASSERT_TRUE(
      engine->RegisterPolicy("line", LinePolicy(32), Ramp(32), 100.0).ok());
  ASSERT_TRUE(engine
                  ->RegisterPolicy("slab", GridPolicy(DomainShape({8, 8}), 4),
                                   Ramp(64), 100.0)
                  .ok());
  ASSERT_TRUE(
      engine->RegisterPolicy("dp", UnboundedDpPolicy(32), Ramp(32), 100.0)
          .ok());
  ASSERT_TRUE(engine->OpenSession("s", 50.0).ok());
}

QueryRequest Dense(const std::string& policy, size_t domain, double eps) {
  QueryRequest request;
  request.session = "s";
  request.policy = policy;
  request.workload = IdentityWorkload(domain);
  request.epsilon = eps;
  return request;
}

QueryRequest Ranged(const std::string& policy, double eps) {
  QueryRequest request;
  request.session = "s";
  request.policy = policy;
  request.ranges = RangeWorkload("r", DomainShape({8, 8}),
                                 {{{0, 0}, {3, 3}}, {{2, 1}, {7, 6}}});
  request.epsilon = eps;
  return request;
}

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "answer " << i << " diverged";
  }
}

TEST(EngineDeterminism, SameSeedSameOrderBitIdenticalAcrossInstances) {
  QueryEngine first(Seeded(2015));
  QueryEngine second(Seeded(2015));
  RegisterAll(&first);
  RegisterAll(&second);

  const std::vector<QueryRequest> script = {
      Dense("line", 32, 0.5), Ranged("slab", 0.25), Dense("dp", 32, 0.5),
      Dense("line", 32, 0.125), Ranged("slab", 0.25),
  };
  for (const QueryRequest& request : script) {
    const QueryResult a = first.Submit(request).ValueOrDie();
    const QueryResult b = second.Submit(request).ValueOrDie();
    ExpectBitIdentical(a.answers, b.answers);
    EXPECT_EQ(a.range_fast_path, b.range_fast_path);
  }
}

TEST(EngineDeterminism, HandlePathMatchesStringPath) {
  QueryEngine by_string(Seeded(99));
  QueryEngine by_handle(Seeded(99));
  RegisterAll(&by_string);
  RegisterAll(&by_handle);

  for (int round = 0; round < 3; ++round) {
    const QueryRequest plain = Dense("line", 32, 0.5);
    QueryRequest carried = plain;
    carried.session_handle = by_handle.ResolveSession("s").ValueOrDie();
    carried.policy_handle = by_handle.ResolvePolicy("line").ValueOrDie();
    const QueryResult a = by_string.Submit(plain).ValueOrDie();
    const QueryResult b = by_handle.Submit(carried).ValueOrDie();
    ExpectBitIdentical(a.answers, b.answers);
    // Handles do not change accounting either.
    EXPECT_EQ(a.session_remaining.value(), b.session_remaining.value());
  }
}

TEST(EngineDeterminism, BatchIsDeterministicAcrossInstances) {
  QueryEngine first(Seeded(7));
  QueryEngine second(Seeded(7));
  RegisterAll(&first);
  RegisterAll(&second);

  // Mixed batch: two (session, policy) groups, interleaved indices.
  const std::vector<QueryRequest> batch = {
      Dense("line", 32, 0.5), Ranged("slab", 0.25), Dense("line", 32, 0.25),
      Dense("dp", 32, 0.5), Ranged("slab", 0.125),
  };
  const auto a = first.SubmitBatch(batch);
  const auto b = second.SubmitBatch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    ExpectBitIdentical(a[i].ValueOrDie().answers,
                       b[i].ValueOrDie().answers);
  }
}

TEST(EngineDeterminism, DistinctSubmitsUseDistinctStreams) {
  QueryEngine engine(Seeded(3));
  RegisterAll(&engine);
  const QueryResult a = engine.Submit(Dense("line", 32, 0.5)).ValueOrDie();
  const QueryResult b = engine.Submit(Dense("line", 32, 0.5)).ValueOrDie();
  // Same request, different submit counter: the noise must differ.
  bool any_diff = false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i] != b.answers[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace blowfish
