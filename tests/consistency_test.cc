// Isotonic regression (PAVA) — the Section 5.4.2 consistency step.

#include <gtest/gtest.h>

#include "mech/consistency.h"
#include "rng/rng.h"

namespace blowfish {
namespace {

// Brute-force L2 projection onto non-decreasing sequences via convex
// projection with a fine grid search over small inputs (projected
// gradient on the isotonic cone).
Vector BruteForceIsotonic(const Vector& y, size_t iterations = 200000) {
  Vector z = y;
  std::sort(z.begin(), z.end());  // feasible start
  const double lr = 1e-3;
  for (size_t it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < z.size(); ++i) z[i] -= lr * (z[i] - y[i]);
    // project: one pass of pooling adjacent violators approximately
    for (size_t i = 1; i < z.size(); ++i) {
      if (z[i] < z[i - 1]) {
        const double m = 0.5 * (z[i] + z[i - 1]);
        z[i] = m;
        z[i - 1] = m;
      }
    }
  }
  return z;
}

TEST(Isotonic, AlreadyMonotoneUnchanged) {
  const Vector y{1.0, 2.0, 2.0, 5.0};
  EXPECT_EQ(IsotonicRegression(y), y);
}

TEST(Isotonic, SimplePooling) {
  // Classic example: {3, 1} pools to {2, 2}.
  EXPECT_EQ(IsotonicRegression({3.0, 1.0}), (Vector{2.0, 2.0}));
}

TEST(Isotonic, OutputIsMonotone) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Vector y(30);
    for (double& v : y) v = rng.Normal(0.0, 10.0);
    const Vector z = IsotonicRegression(y);
    for (size_t i = 1; i < z.size(); ++i) EXPECT_LE(z[i - 1], z[i] + 1e-12);
  }
}

TEST(Isotonic, PreservesMean) {
  // The projection pools blocks to their averages, so the total is
  // preserved.
  Rng rng(2);
  Vector y(25);
  for (double& v : y) v = rng.Normal();
  const Vector z = IsotonicRegression(y);
  double sy = 0.0, sz = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    sy += y[i];
    sz += z[i];
  }
  EXPECT_NEAR(sy, sz, 1e-9);
}

TEST(Isotonic, NeverWorseThanInputInL2) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Vector truth(20);
    double acc = 0.0;
    for (double& v : truth) {
      acc += rng.Uniform();
      v = acc;  // monotone ground truth (like prefix sums)
    }
    Vector noisy = truth;
    for (double& v : noisy) v += rng.Laplace(2.0);
    const Vector projected = IsotonicRegression(noisy);
    double err_noisy = 0.0, err_proj = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
      err_noisy += (noisy[i] - truth[i]) * (noisy[i] - truth[i]);
      err_proj += (projected[i] - truth[i]) * (projected[i] - truth[i]);
    }
    // Projection onto a convex set containing the truth cannot increase
    // L2 distance to the truth.
    EXPECT_LE(err_proj, err_noisy + 1e-9);
  }
}

TEST(Isotonic, MatchesGradientProjectionOnSmallInputs) {
  const Vector y{2.0, -1.0, 0.5, 0.4, 3.0};
  const Vector pava = IsotonicRegression(y);
  const Vector brute = BruteForceIsotonic(y);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(pava[i], brute[i], 0.02);
}

TEST(Isotonic, WeightedPoolsByWeight) {
  // Two violating points with weights 3 and 1 pool at the weighted
  // mean (3*4 + 1*0)/4 = 3.
  const Vector z = IsotonicRegressionWeighted({4.0, 0.0}, {3.0, 1.0});
  EXPECT_NEAR(z[0], 3.0, 1e-12);
  EXPECT_NEAR(z[1], 3.0, 1e-12);
}

TEST(Isotonic, ClampedVariant) {
  const Vector z = IsotonicRegressionClamped({-5.0, 10.0}, 0.0, 6.0);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(Isotonic, EmptyAndSingleton) {
  EXPECT_TRUE(IsotonicRegression({}).empty());
  EXPECT_EQ(IsotonicRegression({7.0}), (Vector{7.0}));
}

TEST(IsotonicDeath, RejectsNonPositiveWeights) {
  EXPECT_DEATH(IsotonicRegressionWeighted({1.0}, {0.0}), "CHECK failed");
}

}  // namespace
}  // namespace blowfish
