// The Theorem 5.6 slab strategy for Gθ_{k²}.

#include <gtest/gtest.h>

#include "core/mechanisms_kd.h"
#include "mech/privelet.h"
#include "rng/rng.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(GridTheta, RejectsThetaOne) {
  EXPECT_FALSE(GridThetaRangeMechanism::Create(8, 1).ok());
}

TEST(GridTheta, CreateCertifiesSmallStretch) {
  auto mech = GridThetaRangeMechanism::Create(16, 4).ValueOrDie();
  EXPECT_GE(mech->stretch(), 1);
  EXPECT_LE(mech->stretch(), 8);
  EXPECT_EQ(mech->block(), 2u);
}

TEST(GridTheta, NoiseFreeAnswersAreExact) {
  const size_t k = 12;
  auto mech = GridThetaRangeMechanism::Create(k, 4).ValueOrDie();
  const DomainShape domain({k, k});
  Rng rng(1);
  Vector x(domain.size());
  for (double& v : x) v = static_cast<double>(rng.UniformInt(0, 9));
  const RangeWorkload w = RandomRanges(domain, 100, &rng);
  const Vector truth = w.Answer(x);
  const Vector answers = mech->AnswerRanges(w, x, 1e9, &rng);
  ASSERT_EQ(answers.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(answers[i], truth[i], 1e-3) << "query " << i;
  }
}

TEST(GridTheta, UnbiasedUnderNoise) {
  const size_t k = 8;
  auto mech = GridThetaRangeMechanism::Create(k, 2).ValueOrDie();
  const DomainShape domain({k, k});
  Vector x(domain.size(), 3.0);
  // A handful of fixed queries.
  std::vector<RangeQuery> queries{{{1, 1}, {5, 6}},
                                  {{0, 0}, {7, 7}},
                                  {{2, 3}, {2, 3}},
                                  {{4, 0}, {6, 7}}};
  const RangeWorkload w("probe", domain, queries);
  const Vector truth = w.Answer(x);
  Rng rng(2);
  const Vector xg = mech->PrecomputeTransformed(x);
  Vector mean(truth.size(), 0.0);
  const size_t trials = 1500;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est =
        mech->AnswerRangesOnTransformed(w, xg, Sum(x), 2.0, &rng);
    for (size_t i = 0; i < est.size(); ++i) mean[i] += est[i] / trials;
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(mean[i], truth[i], std::max(3.0, 0.05 * truth[i]));
  }
}

namespace {

// Mean per-query squared error of the slab mechanism / Privelet pair
// on a uniform database.
std::pair<double, double> CompareAgainstPrivelet(size_t k, size_t theta,
                                                 double eps) {
  auto mech = GridThetaRangeMechanism::Create(k, theta).ValueOrDie();
  const DomainShape domain({k, k});
  Rng qrng(3);
  const RangeWorkload w = RandomRanges(domain, 200, &qrng);
  Vector x(domain.size(), 1.0);
  const Vector truth = w.Answer(x);
  const Vector xg = mech->PrecomputeTransformed(x);
  double blowfish_err = 0.0;
  const size_t trials = 5;
  for (size_t t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    const Vector est =
        mech->AnswerRangesOnTransformed(w, xg, Sum(x), eps, &rng);
    blowfish_err += MeanSquaredError(truth, est) / trials;
  }
  PriveletMechanism privelet{domain};
  double privelet_err = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    Rng rng(200 + t);
    const Vector est = privelet.Run(x, eps / 2.0, &rng);
    privelet_err += MeanSquaredError(truth, w.Answer(est)) / trials;
  }
  return {blowfish_err, privelet_err};
}

}  // namespace

TEST(GridTheta, BeatsPriveletForSmallTheta) {
  // θ=2 (block 1): the spanner is the unit grid with stretch 2, and
  // the per-line strategy beats ε/2 Privelet already at k=64.
  const auto [blowfish_err, privelet_err] = CompareAgainstPrivelet(64, 2, 0.1);
  EXPECT_LT(blowfish_err, privelet_err);
}

TEST(GridTheta, RelativeErrorImprovesWithDomainSize) {
  // Theorem 5.6's asymptotics: O(d³ log³θ log^{3(d-1)}k) vs Privelet's
  // O(log^{3d}k) — at fixed θ the ratio Blowfish/DP must fall as k
  // grows ("better than Privelet when d·logθ is small compared to
  // log k", Section 5.3.2 discussion).
  const auto [b32, p32] = CompareAgainstPrivelet(32, 4, 0.1);
  const auto [b64, p64] = CompareAgainstPrivelet(64, 4, 0.1);
  EXPECT_LT(b64 / p64, b32 / p32);
}

TEST(GridTheta, GuaranteeMentionsStretchAndPolicy) {
  auto mech = GridThetaRangeMechanism::Create(8, 2).ValueOrDie();
  const PrivacyGuarantee g = mech->Guarantee(1.0);
  EXPECT_NE(g.neighbor_model.find("G^2_{8x8}"), std::string::npos);
  EXPECT_NE(g.neighbor_model.find("stretch"), std::string::npos);
}

}  // namespace
}  // namespace blowfish
