// Crash-safe ε-ledger journal tests: wire-format recovery edges
// (torn tails, corruption, seq gaps, checkpoint+tail equivalence),
// fault-injected append/fsync failures against the production retry
// and fail-closed paths, and end-to-end engine recovery — every
// charge the engine admits must be covered by a durable record, and
// a journal that cannot make a record durable must refuse the charge
// without drawing noise.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/budget_accountant.h"
#include "engine/ledger_journal.h"
#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

// ------------------------------------------------------------ fixtures

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/bfjournal.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    // Best-effort cleanup; stray files are in /tmp anyway.
    JournalScanReport report;
    if (LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok()) {
      for (const auto& segment : report.segments) {
        (void)PosixJournalIo()->Remove(dir_ + "/" + segment.name);
      }
    }
    ::rmdir(dir_.c_str());
  }

  JournalOptions Options() {
    JournalOptions options;
    options.dir = dir_;
    options.retry_backoff_micros = 0;  // keep fault tests fast
    return options;
  }

  std::string dir_;
};

JournalRecord Spend(uint64_t seq, const std::string& id, double epsilon,
                    double remaining) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::kSpend;
  rec.seq = seq;
  rec.epsilon = epsilon;
  rec.workload = "w";
  rec.ledgers.push_back(JournalRecord::Line{id, remaining});
  return rec;
}

// Writes a raw segment file from already-framed body bytes.
void WriteSegment(const std::string& dir, uint64_t start_seq,
                  const std::string& body) {
  const std::string path = dir + "/" + JournalSegmentName(start_seq);
  std::string bytes = JournalSegmentHeader(start_seq) + body;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string Frame(const JournalRecord& rec) {
  std::string payload;
  JournalEncodeRecord(rec, &payload);
  std::string framed;
  JournalFrameRecord(payload, &framed);
  return framed;
}

Status AppendSpend(LedgerJournal* journal, const std::string& id,
                   double epsilon, double remaining) {
  LedgerJournal::ChargeLine line;
  line.id = &id;
  line.remaining = remaining;
  return journal->AppendCharge(/*charged=*/true, StatusCode::kOk, epsilon, 1,
                               "w", nullptr, &line, 1);
}

// --------------------------------------------------- clean round trips

TEST_F(JournalTest, FreshDirectoryOpensEmpty) {
  Result<std::unique_ptr<LedgerJournal>> journal = LedgerJournal::Open(Options());
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  const LedgerJournal::Stats stats = (*journal)->stats();
  EXPECT_EQ(stats.next_seq, 1u);
  EXPECT_EQ(stats.recovered_records, 0u);
  EXPECT_EQ(stats.segments, 1u);  // header-only active segment
  EXPECT_TRUE((*journal)->health().ok());
}

TEST_F(JournalTest, ReplayIsBitExactAndConsumeOnce) {
  const std::string alice = "session/alice";
  const std::string cap = "policy/p";
  double spent_alice = 0.0;
  double spent_cap = 0.0;
  {
    auto journal = LedgerJournal::Open(Options()).ValueOrDie();
    for (int i = 0; i < 17; ++i) {
      const double eps = 0.01 * (i + 1);
      spent_alice += eps;
      spent_cap += eps;
      ASSERT_TRUE(AppendSpend(journal.get(), alice, eps, 3.0 - spent_alice).ok());
      ASSERT_TRUE(AppendSpend(journal.get(), cap, eps, 4.0 - spent_cap).ok());
    }
  }
  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  EXPECT_EQ(journal->stats().recovered_records, 34u);
  RecoveredLedger led;
  ASSERT_TRUE(journal->TakeRecovered(alice, &led));
  // Replay performs the same `spent += ε` chain in the same order, so
  // the recovered total is the identical double, not merely close.
  EXPECT_EQ(led.spent, spent_alice);
  EXPECT_EQ(led.records, 17u);
  EXPECT_FALSE(journal->TakeRecovered(alice, &led));  // consumed
  ASSERT_TRUE(journal->TakeRecovered(cap, &led));
  EXPECT_EQ(led.spent, spent_cap);
  // New appends continue the seq chain past the replayed records.
  EXPECT_EQ(journal->stats().next_seq, 35u);
  ASSERT_TRUE(AppendSpend(journal.get(), alice, 0.5, 0.0).ok());
}

TEST_F(JournalTest, RefusalsReplayToZeroSpend) {
  const std::string bob = "session/bob";
  {
    auto journal = LedgerJournal::Open(Options()).ValueOrDie();
    LedgerJournal::ChargeLine line;
    line.id = &bob;
    line.remaining = 0.4;
    ASSERT_TRUE(journal
                    ->AppendCharge(/*charged=*/false, StatusCode::kOutOfRange,
                                   1.0, 1, "greedy", nullptr, &line, 1)
                    .ok());
  }
  JournalScanReport report;
  ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok());
  EXPECT_EQ(report.refusals, 1u);
  EXPECT_EQ(report.spends, 0u);

  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  // A refusal spends nothing, so replay leaves no balance to restore —
  // the ledger re-opens at its full budget.
  RecoveredLedger led;
  EXPECT_FALSE(journal->TakeRecovered(bob, &led));
}

TEST_F(JournalTest, HeaderOnlyTrailingSegmentIsLegal) {
  WriteSegment(dir_, 1, "");
  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  EXPECT_EQ(journal->stats().next_seq, 1u);
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.1, 0.9).ok());
}

// ------------------------------------------------------ torn & corrupt

TEST_F(JournalTest, TornTailRefusedWithoutFlagRepairedWithIt) {
  const std::string good1 = Frame(Spend(1, "session/a", 0.25, 0.75));
  const std::string good2 = Frame(Spend(2, "session/a", 0.25, 0.5));
  const std::string torn = Frame(Spend(3, "session/a", 0.25, 0.25));
  WriteSegment(dir_, 1,
               good1 + good2 + torn.substr(0, torn.size() - 5));

  JournalScanReport report;
  ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.records, 2u);

  Result<std::unique_ptr<LedgerJournal>> refused = LedgerJournal::Open(Options());
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().ToString().find("allow_torn_tail"),
            std::string::npos)
      << refused.status().ToString();

  JournalOptions options = Options();
  options.allow_torn_tail = true;
  auto journal = LedgerJournal::Open(options).ValueOrDie();
  EXPECT_TRUE(journal->stats().recovered_torn_tail);
  RecoveredLedger led;
  ASSERT_TRUE(journal->TakeRecovered("session/a", &led));
  EXPECT_EQ(led.records, 2u);
  EXPECT_EQ(led.spent, 0.25 + 0.25);
  // The tear was truncated out of the file on disk.
  const std::string bytes =
      PosixJournalIo()->ReadAll(dir_ + "/" + JournalSegmentName(1)).ValueOrDie();
  EXPECT_EQ(bytes.size(), report.torn_good_bytes);
  // And the journal keeps appending where the verified tail ended.
  EXPECT_EQ(journal->stats().next_seq, 3u);
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.25, 0.25).ok());
}

TEST_F(JournalTest, BadHeaderFinalSegmentIsTearOnlyWhenHeaderSized) {
  // Segment 1 holds an acknowledged spend; the final segment's header
  // is garbage but the file has bytes past the 24-byte header. The
  // header is written and synced before any frame, so this cannot be a
  // rotation tear — recovery must refuse rather than delete what could
  // be acknowledged spends.
  WriteSegment(dir_, 1, Frame(Spend(1, "session/a", 0.25, 0.75)));
  const std::string late = dir_ + "/" + JournalSegmentName(2);
  std::string garbage(64, '\xee');
  std::FILE* f = std::fopen(late.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), f),
            garbage.size());
  std::fclose(f);

  JournalScanReport report;
  ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok());
  EXPECT_FALSE(report.torn_tail);
  EXPECT_FALSE(report.errors.empty());
  JournalOptions options = Options();
  options.allow_torn_tail = true;  // must not help
  EXPECT_FALSE(LedgerJournal::Open(options).ok());

  // A partial header (<= 24 bytes) with nothing after it IS the
  // crash-during-rotation signature: deletable, and the acknowledged
  // spend in segment 1 survives recovery.
  ASSERT_TRUE(PosixJournalIo()->TruncateFile(late, 10).ok());
  JournalScanReport torn_report;
  ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &torn_report).ok());
  EXPECT_TRUE(torn_report.torn_tail);
  EXPECT_TRUE(torn_report.errors.empty());
  EXPECT_EQ(torn_report.torn_good_bytes, 0u);
  auto journal = LedgerJournal::Open(options).ValueOrDie();
  EXPECT_TRUE(journal->stats().recovered_torn_tail);
  RecoveredLedger led;
  ASSERT_TRUE(journal->TakeRecovered("session/a", &led));
  EXPECT_EQ(led.spent, 0.25);
}

TEST_F(JournalTest, MidFileCorruptionAlwaysRefuses) {
  const std::string good1 = Frame(Spend(1, "session/a", 0.25, 0.75));
  std::string bad = Frame(Spend(2, "session/a", 0.25, 0.5));
  bad[bad.size() / 2] ^= 0x40;  // damage payload under an old CRC
  const std::string good3 = Frame(Spend(3, "session/a", 0.25, 0.25));
  WriteSegment(dir_, 1, good1 + bad + good3);

  JournalScanReport report;
  ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok());
  EXPECT_FALSE(report.errors.empty());
  EXPECT_FALSE(report.torn_tail);  // data follows the damage: not a tear

  JournalOptions options = Options();
  options.allow_torn_tail = true;  // must not help
  Result<std::unique_ptr<LedgerJournal>> refused = LedgerJournal::Open(options);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().ToString().find("ledger_fsck"), std::string::npos);
}

TEST_F(JournalTest, SeqGapAndDuplicateRefuse) {
  {
    WriteSegment(dir_, 1, Frame(Spend(1, "session/a", 0.1, 0.9)) +
                              Frame(Spend(3, "session/a", 0.1, 0.8)));
    JournalScanReport report;
    ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok());
    EXPECT_FALSE(report.errors.empty());
    EXPECT_FALSE(LedgerJournal::Open(Options()).ok());
    ASSERT_TRUE(
        PosixJournalIo()->Remove(dir_ + "/" + JournalSegmentName(1)).ok());
  }
  WriteSegment(dir_, 1, Frame(Spend(1, "session/a", 0.1, 0.9)) +
                            Frame(Spend(1, "session/a", 0.1, 0.8)));
  JournalScanReport report;
  ASSERT_TRUE(LedgerJournal::Scan(dir_, PosixJournalIo(), &report).ok());
  EXPECT_FALSE(report.errors.empty());
  EXPECT_FALSE(LedgerJournal::Open(Options()).ok());
}

// ----------------------------------------------- checkpoint/compaction

TEST_F(JournalTest, CheckpointCompactsAndReplayMatchesStraightLine) {
  const std::string id = "session/a";
  // Straight-line journal: 8 spends, no checkpoint.
  double straight = 0.0;
  for (int i = 0; i < 8; ++i) straight += 0.01 * (i + 1);

  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  double spent = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double eps = 0.01 * (i + 1);
    spent += eps;
    ASSERT_TRUE(AppendSpend(journal.get(), id, eps, 1.0 - spent).ok());
  }
  std::vector<JournalRecord::CheckpointLine> snapshot;
  snapshot.push_back(JournalRecord::CheckpointLine{id, 1.0, spent});
  ASSERT_TRUE(journal->Checkpoint(snapshot).ok());
  EXPECT_FALSE(journal->checkpoint_due());
  for (int i = 4; i < 8; ++i) {
    const double eps = 0.01 * (i + 1);
    spent += eps;
    ASSERT_TRUE(AppendSpend(journal.get(), id, eps, 1.0 - spent).ok());
  }
  EXPECT_EQ(journal->stats().segments, 1u);  // compacted
  journal.reset();

  auto reopened = LedgerJournal::Open(Options()).ValueOrDie();
  RecoveredLedger led;
  ASSERT_TRUE(reopened->TakeRecovered(id, &led));
  // checkpoint(spent after 4) + tail(4 more) replays to the same
  // double as never checkpointing at all.
  EXPECT_EQ(led.spent, straight);
  ASSERT_TRUE(led.has_total);
  EXPECT_EQ(led.total, 1.0);
}

TEST_F(JournalTest, CheckpointCarriesUnclaimedRecoveredBalances) {
  const std::string orphan = "session/orphan";
  {
    auto journal = LedgerJournal::Open(Options()).ValueOrDie();
    ASSERT_TRUE(AppendSpend(journal.get(), orphan, 0.3, 0.7).ok());
  }
  {
    auto journal = LedgerJournal::Open(Options()).ValueOrDie();
    // Nobody re-opened `orphan` (no TakeRecovered) — compaction must
    // still carry its spend forward.
    ASSERT_TRUE(journal->Checkpoint({}).ok());
  }
  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  RecoveredLedger led;
  ASSERT_TRUE(journal->TakeRecovered(orphan, &led));
  EXPECT_EQ(led.spent, 0.3);
  EXPECT_FALSE(led.has_total);  // cap was never known
}

// ------------------------------------------- accountant journal lines

TEST_F(JournalTest, WideChargeJournalsEveryLine) {
  // Six ledger lines — past the audit ring's fixed 4-line event,
  // including a repeated handle (each occurrence is one line). Every
  // admitted spend must be covered by the durable record, so recovery
  // must replay all six lines, not the first four.
  {
    auto journal = LedgerJournal::Open(Options()).ValueOrDie();
    BudgetAccountant accountant;
    accountant.SetJournal(journal.get());
    LedgerHandle handles[6];
    for (int i = 0; i < 5; ++i) {
      handles[i] =
          accountant.OpenLedger("wide/" + std::to_string(i), 1.0).ValueOrDie();
    }
    handles[5] = handles[0];  // wide/0 composes 2·ε sequentially
    ChargeTag tag;
    tag.workload = "wide";
    ASSERT_TRUE(accountant.Charge(handles, 6, 0.125, tag).ok());
    accountant.SetJournal(nullptr);
  }
  auto reopened = LedgerJournal::Open(Options()).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    RecoveredLedger led;
    ASSERT_TRUE(reopened->TakeRecovered("wide/" + std::to_string(i), &led))
        << "ledger wide/" << i << " lost by recovery";
    EXPECT_EQ(led.spent, i == 0 ? 0.25 : 0.125) << "wide/" << i;
  }
}

TEST_F(JournalTest, ChargeWiderThanWireFormatRefusedOutright) {
  // The frame's line count is a u16; a wider charge must be refused
  // before any bytes land, never silently truncated.
  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  const std::string id = "session/a";
  std::vector<LedgerJournal::ChargeLine> lines(
      LedgerJournal::kMaxChargeLines + 1);
  for (LedgerJournal::ChargeLine& line : lines) line.id = &id;
  Status refused =
      journal->AppendCharge(/*charged=*/true, StatusCode::kOk, 0.001, 1, "w",
                            nullptr, lines.data(), lines.size());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailableDurability);
  EXPECT_EQ(journal->stats().appends, 0u);
  // Neither a seq was consumed nor the journal hurt.
  EXPECT_TRUE(journal->health().ok());
  ASSERT_TRUE(AppendSpend(journal.get(), id, 0.1, 0.9).ok());
}

TEST_F(JournalTest, FailedRestoreHandsRecoveredBalanceBack) {
  // A checkpoint carrying a negative spent cannot be applied to a
  // fresh ledger (RestoreSpent refuses it). The failed OpenLedger must
  // return the balance to the journal: a retried open fails the same
  // way instead of silently succeeding with a refilled budget.
  const std::string id = "session/neg";
  JournalRecord rec;
  rec.type = JournalRecord::Type::kCheckpoint;
  rec.seq = 1;
  rec.checkpoint.push_back(JournalRecord::CheckpointLine{id, 1.0, -0.5});
  WriteSegment(dir_, 1, Frame(rec));

  auto journal = LedgerJournal::Open(Options()).ValueOrDie();
  BudgetAccountant accountant;
  accountant.SetJournal(journal.get());
  EXPECT_FALSE(accountant.OpenLedger(id, 1.0).ok());
  EXPECT_FALSE(accountant.OpenLedger(id, 1.0).ok());  // still not refilled
  RecoveredLedger led;
  ASSERT_TRUE(journal->TakeRecovered(id, &led));  // balance still held
  EXPECT_EQ(led.spent, -0.5);
  accountant.SetJournal(nullptr);
}

// ------------------------------------------------------ injected faults

TEST_F(JournalTest, TransientAppendFailureIsRiddenOut) {
  JournalFaultPlan plan;
  FaultInjectingJournalIo io(PosixJournalIo(), &plan);
  JournalOptions options = Options();
  options.io = &io;
  auto journal = LedgerJournal::Open(options).ValueOrDie();

  // Fail the next two appends, leaving 3 torn bytes each time —
  // within the retry budget (4), and the retries must first truncate
  // the torn bytes back out or replay sees garbage.
  plan.torn_bytes_on_failure = 3;
  plan.fail_append_count = 2;
  plan.fail_append_at = plan.append_calls.load() + 1;
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.25, 0.75).ok());
  EXPECT_GE(journal->stats().retries, 2u);
  EXPECT_EQ(journal->stats().append_failures, 0u);
  journal.reset();

  auto reopened = LedgerJournal::Open(Options()).ValueOrDie();
  RecoveredLedger led;
  ASSERT_TRUE(reopened->TakeRecovered("session/a", &led));
  EXPECT_EQ(led.records, 1u);  // exactly once, no duplicated frames
  EXPECT_EQ(led.spent, 0.25);
}

TEST_F(JournalTest, ShortWritesAreProgressNotFaults) {
  JournalFaultPlan plan;
  FaultInjectingJournalIo io(PosixJournalIo(), &plan);
  JournalOptions options = Options();
  options.io = &io;
  auto journal = LedgerJournal::Open(options).ValueOrDie();

  plan.short_append_at = plan.append_calls.load() + 1;
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.25, 0.75).ok());
  EXPECT_EQ(journal->stats().retries, 0u);  // no retry budget consumed
  journal.reset();

  auto reopened = LedgerJournal::Open(Options()).ValueOrDie();
  RecoveredLedger led;
  ASSERT_TRUE(reopened->TakeRecovered("session/a", &led));
  EXPECT_EQ(led.records, 1u);
}

TEST_F(JournalTest, DeadDiskFailsClosedAndStaysUsable) {
  JournalFaultPlan plan;
  FaultInjectingJournalIo io(PosixJournalIo(), &plan);
  JournalOptions options = Options();
  options.io = &io;
  options.io_retries = 2;
  auto journal = LedgerJournal::Open(options).ValueOrDie();
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.1, 0.9).ok());

  plan.fail_append_at = plan.append_calls.load() + 1;  // unbounded count
  Status refused = AppendSpend(journal.get(), "session/a", 0.1, 0.8);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailableDurability);
  EXPECT_EQ(journal->stats().append_failures, 1u);
  // The give-up truncated the partial record back out: the journal is
  // refusing charges, not poisoned, and works once the disk returns.
  EXPECT_TRUE(journal->health().ok());
  plan.fail_append_at = 0;
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.1, 0.8).ok());
  journal.reset();

  auto reopened = LedgerJournal::Open(Options()).ValueOrDie();
  RecoveredLedger led;
  ASSERT_TRUE(reopened->TakeRecovered("session/a", &led));
  EXPECT_EQ(led.records, 2u);  // the refused spend left no trace
  EXPECT_EQ(led.spent, 0.1 + 0.1);
}

TEST_F(JournalTest, FsyncFailureRefusesWithoutRetryingSync) {
  JournalFaultPlan plan;
  FaultInjectingJournalIo io(PosixJournalIo(), &plan);
  JournalOptions options = Options();
  options.io = &io;
  auto journal = LedgerJournal::Open(options).ValueOrDie();

  const uint64_t syncs_before = plan.sync_calls.load();
  plan.fail_sync_count = 1;
  plan.fail_sync_at = syncs_before + 1;
  Status refused = AppendSpend(journal.get(), "session/a", 0.1, 0.9);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailableDurability);
  // One failed data sync + one repair sync — never "retry fsync until
  // it says yes" (a failed fsync can mark dirty pages clean; a later
  // success would claim durability that never happened).
  EXPECT_EQ(plan.sync_calls.load(), syncs_before + 2);
  EXPECT_TRUE(journal->health().ok());
  ASSERT_TRUE(AppendSpend(journal.get(), "session/a", 0.1, 0.9).ok());
}

TEST_F(JournalTest, UnrepairableFailurePoisonsEveryLaterCharge) {
  JournalFaultPlan plan;
  FaultInjectingJournalIo io(PosixJournalIo(), &plan);
  JournalOptions options = Options();
  options.io = &io;
  auto journal = LedgerJournal::Open(options).ValueOrDie();

  // Data fsync fails AND the repair fsync fails: the tail state is
  // unknowable, so the journal must go sticky-unavailable.
  plan.fail_sync_count = 2;
  plan.fail_sync_at = plan.sync_calls.load() + 1;
  Status refused = AppendSpend(journal.get(), "session/a", 0.1, 0.9);
  ASSERT_FALSE(refused.ok());
  ASSERT_FALSE(journal->health().ok());
  EXPECT_EQ(journal->health().code(), StatusCode::kUnavailableDurability);

  // Disk is "fixed" now; the poisoned journal must still refuse.
  plan.fail_sync_at = 0;
  Status still = AppendSpend(journal.get(), "session/a", 0.1, 0.9);
  ASSERT_FALSE(still.ok());
  EXPECT_EQ(still.code(), StatusCode::kUnavailableDurability);
}

// ----------------------------------------------------- engine-level

Vector Ramp(size_t n, size_t mod) {
  Vector x(n, 0.0);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % mod);
  return x;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST_F(JournalTest, EngineRecoversBalancesBitExact) {
  EngineOptions options;
  options.seed = 7;
  options.journal_path = dir_;
  double session_remaining = 0.0;
  double policy_remaining = 0.0;
  {
    auto engine = QueryEngine::Open(options).ValueOrDie();
    ASSERT_TRUE(engine->RegisterPolicy("salaries", LinePolicy(16),
                                       Ramp(16, 13), 4.0)
                    .ok());
    ASSERT_TRUE(engine->OpenSession("alice", 3.0).ok());
    QueryRequest request;
    request.session = "alice";
    request.policy = "salaries";
    request.workload = IdentityWorkload(16);
    for (int i = 0; i < 9; ++i) {
      request.epsilon = 0.01 + 0.001 * i;
      ASSERT_TRUE(engine->Submit(request).ok());
    }
    session_remaining = engine->SessionRemaining("alice").ValueOrDie();
    policy_remaining = engine->PolicyRemaining("salaries").ValueOrDie();
  }
  auto engine = QueryEngine::Open(options).ValueOrDie();
  EXPECT_GT(engine->journal()->stats().recovered_records, 0u);
  ASSERT_TRUE(
      engine->RegisterPolicy("salaries", LinePolicy(16), Ramp(16, 13), 4.0)
          .ok());
  ASSERT_TRUE(engine->OpenSession("alice", 3.0).ok());
  EXPECT_TRUE(BitEqual(engine->SessionRemaining("alice").ValueOrDie(),
                       session_remaining));
  EXPECT_TRUE(BitEqual(engine->PolicyRemaining("salaries").ValueOrDie(),
                       policy_remaining));
  EXPECT_TRUE(engine->durability_health().ok());
}

TEST_F(JournalTest, EngineJournalFailureRefusesChargeAndDrawsNoNoise) {
  // Twin engines, same seed. A skips the doomed submit entirely; B
  // attempts it against a dead journal and must be refused. If the
  // refusal drew any noise, B's later answers would diverge from A's.
  JournalFaultPlan plan;
  FaultInjectingJournalIo faulty(PosixJournalIo(), &plan);
  auto run = [&](bool inject_failure, const std::string& journal_dir,
                 JournalIo* io, Vector* final_answers,
                 double* remaining) -> Status {
    EngineOptions options;
    options.seed = 20150831;
    options.journal_path = journal_dir;
    options.journal_io = io;
    options.journal_io_retries = 1;
    options.journal_retry_backoff_micros = 0;
    auto opened = QueryEngine::Open(options);
    BF_RETURN_NOT_OK(opened.status());
    QueryEngine& engine = **opened;
    BF_RETURN_NOT_OK(engine.RegisterPolicy(
        "mobility", GridPolicy(DomainShape({8, 8}), 2), Ramp(64, 17), 8.0));
    BF_RETURN_NOT_OK(engine.OpenSession("alice", 4.0));

    // The range path draws per-submit reconstruction noise, so answer
    // equality across the twins is sensitive to any stray draw.
    QueryRequest scan;
    scan.session = "alice";
    scan.policy = "mobility";
    scan.ranges = RangeWorkload("probe", DomainShape({8, 8}),
                                {{{0, 0}, {3, 3}}, {{2, 1}, {7, 7}}});
    scan.epsilon = 0.11;
    Result<QueryResult> first = engine.Submit(scan);
    BF_RETURN_NOT_OK(first.status());

    if (inject_failure) {
      plan.fail_append_at = plan.append_calls.load() + 1;
      QueryRequest doomed = scan;
      doomed.epsilon = 0.07;
      Result<QueryResult> refused = engine.Submit(doomed);
      if (refused.ok()) {
        return Status::Internal("doomed submit was admitted");
      }
      if (refused.status().code() != StatusCode::kUnavailableDurability) {
        return refused.status();
      }
      plan.fail_append_at = 0;
    }

    QueryRequest probe = scan;
    probe.epsilon = 0.13;
    Result<QueryResult> last = engine.Submit(probe);
    BF_RETURN_NOT_OK(last.status());
    *final_answers = (*last).answers;
    *remaining = engine.SessionRemaining("alice").ValueOrDie();
    return Status::OK();
  };

  char tmpl[] = "/tmp/bfjournal.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string twin_dir = tmpl;

  Vector answers_a, answers_b;
  double remaining_a = 0.0, remaining_b = 0.0;
  ASSERT_TRUE(
      run(false, dir_, PosixJournalIo(), &answers_a, &remaining_a).ok());
  ASSERT_TRUE(run(true, twin_dir, &faulty, &answers_b, &remaining_b).ok());

  ASSERT_EQ(answers_a.size(), answers_b.size());
  for (size_t i = 0; i < answers_a.size(); ++i) {
    EXPECT_TRUE(BitEqual(answers_a[i], answers_b[i])) << "answer " << i;
  }
  // The refused charge spent nothing either.
  EXPECT_TRUE(BitEqual(remaining_a, remaining_b));

  JournalScanReport report;
  ASSERT_TRUE(LedgerJournal::Scan(twin_dir, PosixJournalIo(), &report).ok());
  for (const auto& segment : report.segments) {
    (void)PosixJournalIo()->Remove(twin_dir + "/" + segment.name);
  }
  ::rmdir(twin_dir.c_str());
}

TEST_F(JournalTest, CorruptJournalPoisonsEngineFailClosed) {
  // A journal Open() refuses must poison a plainly-constructed engine:
  // every Admit refuses, and the Open factory surfaces the error.
  std::string garbage(64, '\xee');
  const std::string path = dir_ + "/" + JournalSegmentName(1);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(garbage.data(), 1, garbage.size(), f);
  std::fclose(f);
  // Garbage + a healthy later segment = mid-journal corruption (the
  // bad header is not the last segment, so it cannot be a tear).
  WriteSegment(dir_, 2, Frame(Spend(2, "session/a", 0.1, 0.9)));

  EngineOptions options;
  options.journal_path = dir_;
  EXPECT_FALSE(QueryEngine::Open(options).ok());

  QueryEngine engine(options);
  EXPECT_FALSE(engine.durability_health().ok());
  ASSERT_TRUE(
      engine.RegisterPolicy("salaries", LinePolicy(16), Ramp(16, 13), 4.0)
          .ok());
  ASSERT_TRUE(engine.OpenSession("alice", 3.0).ok());
  QueryRequest request;
  request.session = "alice";
  request.policy = "salaries";
  request.workload = IdentityWorkload(16);
  request.epsilon = 0.01;
  Result<QueryResult> refused = engine.Submit(request);
  ASSERT_FALSE(refused.ok());

  (void)PosixJournalIo()->Remove(path);
  (void)PosixJournalIo()->Remove(dir_ + "/" + JournalSegmentName(2));
}

// ------------------------------------------------- audit JSONL replay

TEST(AuditJsonlTest, DurabilityRefusalHasItsOwnLabel) {
  AuditEvent event;
  event.seq = 1;
  event.charged = false;
  event.refusal = StatusCode::kUnavailableDurability;
  event.epsilon = 0.25;
  std::string line;
  EpsilonAuditLog::AppendJsonl(event, &line);
  EXPECT_NE(line.find("\"durability_unavailable\""), std::string::npos) << line;
}

TEST(AuditJsonlTest, ReplayDetectsGapsAndRegressions) {
  auto make = [](uint64_t seq) {
    AuditEvent event;
    event.seq = seq;
    event.charged = true;
    event.epsilon = 0.1;
    return event;
  };
  std::string jsonl;
  EpsilonAuditLog::AppendJsonl(make(1), &jsonl);
  EpsilonAuditLog::AppendJsonl(make(2), &jsonl);
  EpsilonAuditLog::AppendJsonl(make(3), &jsonl);
  JsonlReplayReport clean = EpsilonAuditLog::ReplayJsonl(jsonl);
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.events, 3u);
  EXPECT_EQ(clean.first_seq, 1u);
  EXPECT_EQ(clean.last_seq, 3u);

  // A ring that wrapped between export windows drops events: gap.
  std::string gappy;
  EpsilonAuditLog::AppendJsonl(make(1), &gappy);
  EpsilonAuditLog::AppendJsonl(make(5), &gappy);
  JsonlReplayReport gap = EpsilonAuditLog::ReplayJsonl(gappy);
  EXPECT_FALSE(gap.clean());
  EXPECT_EQ(gap.seq_gaps, 1u);
  EXPECT_EQ(gap.missing_events, 3u);
  EXPECT_TRUE(gap.errors.empty());

  // A duplicate seq is stream corruption, not a drop.
  std::string dup;
  EpsilonAuditLog::AppendJsonl(make(2), &dup);
  EpsilonAuditLog::AppendJsonl(make(2), &dup);
  JsonlReplayReport bad = EpsilonAuditLog::ReplayJsonl(dup);
  EXPECT_EQ(bad.errors.size(), 1u);
  EXPECT_EQ(bad.seq_gaps, 0u);

  JsonlReplayReport malformed = EpsilonAuditLog::ReplayJsonl("not json\n");
  EXPECT_EQ(malformed.events, 0u);
  EXPECT_EQ(malformed.errors.size(), 1u);
}

}  // namespace
}  // namespace blowfish
