// Telemetry-layer tests: the metrics registry's counting invariants,
// sampled stage tracing (including the rate-0 zero-allocation hot
// path), and the ε-audit log's bit-level reconciliation against the
// accountant under a multi-threaded flood.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "engine/async_engine.h"
#include "engine/telemetry.h"
#include "workload/builders.h"

// ---- global allocation counter -------------------------------------
// Counts every operator-new in the test binary; the rate-0 hot-path
// test asserts a zero delta across telemetry calls.

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 7);
  return x;
}

QueryRequest MakeRequest(const std::string& session, const std::string& policy,
                         double epsilon) {
  QueryRequest request;
  request.session = session;
  request.policy = policy;
  request.workload = IdentityWorkload(16);
  request.epsilon = epsilon;
  return request;
}

// ---- registry ------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x_total");
  Counter* b = registry.counter("x_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(3u, b->value());

  LatencyHistogram* h = registry.histogram("x_ms");
  EXPECT_EQ(h, registry.histogram("x_ms"));

  Gauge* g = registry.gauge("x_level");
  g->Set(-5);
  EXPECT_EQ(-5, registry.gauge("x_level")->value());

  DoubleCounter* d = registry.double_counter("x_eps");
  d->Add(0.25);
  d->Add(0.5);
  EXPECT_DOUBLE_EQ(0.75, registry.double_counter("x_eps")->value());
}

TEST(MetricsRegistry, HistogramSnapshotCountsAndPercentiles) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(1.0);  // 1000 us -> bucket 10
  hist.Record(1000.0);                             // 1e6 us outlier
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(101u, snap.count);
  EXPECT_NEAR(1100.0, snap.sum_ms, 1e-9);
  EXPECT_DOUBLE_EQ(1000.0, snap.max_ms);
  // p50 is the bucket upper bound for 1000 us = 2^10 us = 1.024 ms.
  EXPECT_NEAR(1.024, snap.p50_ms, 1e-9);
}

TEST(MetricsRegistry, SnapshotJsonAndPrometheusText) {
  MetricsRegistry registry;
  registry.counter("a_total")->Add(2);
  registry.gauge("b_level")->Set(7);
  registry.double_counter("c_eps")->Add(0.5);
  registry.histogram("d_ms")->Record(3.0);
  registry.gauge_callback("e_cb", [] { return 42.0; });

  const std::string json = registry.SnapshotJson();
  EXPECT_NE(std::string::npos, json.find("\"a_total\":2"));
  EXPECT_NE(std::string::npos, json.find("\"b_level\":7"));
  EXPECT_NE(std::string::npos, json.find("\"c_eps\":0.5"));
  EXPECT_NE(std::string::npos, json.find("\"e_cb\":42"));
  EXPECT_NE(std::string::npos, json.find("\"d_ms\":{\"count\":1"));

  const std::string prom = registry.PrometheusText();
  EXPECT_NE(std::string::npos, prom.find("# TYPE a_total counter"));
  EXPECT_NE(std::string::npos, prom.find("a_total 2"));
  EXPECT_NE(std::string::npos, prom.find("# TYPE b_level gauge"));
  EXPECT_NE(std::string::npos, prom.find("# TYPE d_ms histogram"));
  EXPECT_NE(std::string::npos, prom.find("d_ms_bucket{le=\"+Inf\"} 1"));
  EXPECT_NE(std::string::npos, prom.find("d_ms_count 1"));
  EXPECT_NE(std::string::npos, prom.find("e_cb 42"));
}

// ---- engine counting invariants ------------------------------------

TEST(EngineTelemetry, SubmitLatencyHistogramCountsEveryAttempt) {
  EngineOptions options;
  options.seed = 7;
  QueryEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("s", 1.0).ok());

  constexpr int kOk = 12;
  for (int i = 0; i < kOk; ++i) {
    ASSERT_TRUE(engine.Submit(MakeRequest("s", "line", 0.01)).ok());
  }
  // Two refusals: unknown policy (admission failure) and an over-budget
  // charge. Both are attempts and must be counted.
  EXPECT_FALSE(engine.Submit(MakeRequest("s", "nope", 0.01)).ok());
  EXPECT_FALSE(engine.Submit(MakeRequest("s", "line", 50.0)).ok());

  MetricsRegistry& metrics = engine.telemetry().metrics();
  EXPECT_EQ(static_cast<uint64_t>(kOk) + 2,
            metrics.counter("engine_submits_total")->value());
  EXPECT_EQ(static_cast<uint64_t>(kOk) + 2,
            metrics.histogram("engine_submit_latency_ms")->count());
  EXPECT_EQ(2u, metrics.counter("engine_submit_failures_total")->value());
  EXPECT_EQ(1u, metrics.counter("engine_refused_budget_total")->value());
  EXPECT_NEAR(kOk * 0.01,
              metrics.double_counter("engine_epsilon_charged_total")->value(),
              1e-12);
}

// ---- ε-audit reconciliation ----------------------------------------

// Replays a ledger's audit events (`spent += ε` in log order) and
// compares the running balance bit-for-bit with what each event
// recorded and with the accountant's final answer. The log was
// appended under the charge's shard locks, so per-ledger log order is
// the ledger's spend order — float accumulation order matches exactly.
TEST(EngineTelemetry, AuditReplayReconcilesBitLevelUnderFlood) {
  constexpr size_t kThreads = 4;
  constexpr int kPerThread = 64;
  constexpr double kPolicyCap = 500.0;
  constexpr double kSessionGrant = 100.0;

  EngineOptions options;
  options.seed = 11;
  QueryEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), kPolicyCap)
          .ok());
  std::vector<std::string> sessions;
  for (size_t t = 0; t < kThreads; ++t) {
    sessions.push_back("s" + std::to_string(t));
    ASSERT_TRUE(engine.OpenSession(sessions.back(), kSessionGrant).ok());
  }

  // Mixed ε values that do not accumulate associatively in floating
  // point, so an order mismatch in the replay would show.
  const double eps_mix[] = {0.01, 0.003, 0.0007, 0.02};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        engine.Submit(MakeRequest(sessions[t], "line", eps_mix[(t + i) % 4]))
            .status()
            .Check();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<AuditEvent> events = engine.telemetry().audit().Snapshot();
  ASSERT_EQ(kThreads * kPerThread, events.size());

  // Replay every ledger: running spent per id, checked against each
  // event's recorded post-charge balance with exact equality.
  std::map<std::string, double> spent;
  std::map<std::string, double> last_remaining;
  uint64_t previous_seq = 0;
  for (const AuditEvent& event : events) {
    EXPECT_EQ(previous_seq + 1, event.seq);  // dense, in order
    previous_seq = event.seq;
    ASSERT_TRUE(event.charged);
    ASSERT_EQ(2u, event.num_ledgers);
    for (size_t i = 0; i < event.num_ledgers; ++i) {
      const AuditEvent::LedgerLine& line = event.ledgers[i];
      spent[line.id] += event.epsilon;
      const double total =
          line.id.rfind("session/", 0) == 0 ? kSessionGrant : kPolicyCap;
      const double replayed_remaining = total - spent[line.id];
      // Bit-level: the replay reproduces PrivacyBudget's arithmetic
      // (total - (((0 + ε1) + ε2) + ...)) in the same order.
      EXPECT_EQ(replayed_remaining, line.remaining)
          << "ledger " << line.id << " diverged at seq " << event.seq;
      last_remaining[line.id] = line.remaining;
    }
  }

  // The final replayed balances match the accountant's live answers
  // exactly.
  for (const std::string& session : sessions) {
    EXPECT_EQ(last_remaining["session/" + session],
              engine.SessionRemaining(session).ValueOrDie());
  }
  const auto policy_line = last_remaining.lower_bound("policy/line");
  ASSERT_NE(last_remaining.end(), policy_line);
  EXPECT_EQ(policy_line->second,
            engine.PolicyRemaining("line").ValueOrDie());
}

TEST(EngineTelemetry, RefusalsAreAuditedWithUntouchedBalances) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("s", 0.5).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("s", "line", 0.25)).ok());
  EXPECT_FALSE(engine.Submit(MakeRequest("s", "line", 1.0)).ok());

  const std::vector<AuditEvent> events = engine.telemetry().audit().Snapshot();
  ASSERT_EQ(2u, events.size());
  EXPECT_TRUE(events[0].charged);
  const AuditEvent& refusal = events[1];
  EXPECT_FALSE(refusal.charged);
  EXPECT_EQ(StatusCode::kOutOfRange, refusal.refusal);
  EXPECT_DOUBLE_EQ(1.0, refusal.epsilon);
  // The refused charge left balances untouched: the session line shows
  // the post-first-charge level.
  bool saw_session = false;
  for (size_t i = 0; i < refusal.num_ledgers; ++i) {
    if (refusal.ledgers[i].id == "session/s") {
      saw_session = true;
      EXPECT_EQ(0.5 - 0.25, refusal.ledgers[i].remaining);
    }
  }
  EXPECT_TRUE(saw_session);

  const std::string jsonl = engine.telemetry().audit().ExportJsonl();
  EXPECT_NE(std::string::npos, jsonl.find("\"outcome\":\"refused\""));
  EXPECT_NE(std::string::npos, jsonl.find("\"refusal\":\"budget_exhausted\""));
}

TEST(EpsilonAuditLog, RingWrapKeepsNewestAndCountsDrops) {
  EpsilonAuditLog log(4);
  std::vector<uint64_t> sink_seqs;
  log.SetSink([&](const AuditEvent& event) { sink_seqs.push_back(event.seq); });
  for (int i = 0; i < 10; ++i) {
    AuditEvent event;
    event.epsilon = 0.1 * (i + 1);
    log.Append(std::move(event));
  }
  EXPECT_EQ(10u, log.total_events());
  EXPECT_EQ(6u, log.dropped());
  const std::vector<AuditEvent> kept = log.Snapshot();
  ASSERT_EQ(4u, kept.size());
  EXPECT_EQ(7u, kept.front().seq);
  EXPECT_EQ(10u, kept.back().seq);
  // The sink saw every event, including the ones the ring dropped.
  ASSERT_EQ(10u, sink_seqs.size());
  EXPECT_EQ(1u, sink_seqs.front());
  EXPECT_EQ(10u, sink_seqs.back());
}

TEST(EpsilonAuditLog, ZeroCapacityDisablesCapture) {
  EpsilonAuditLog log(0);
  EXPECT_FALSE(log.enabled());
  AuditEvent event;
  log.Append(std::move(event));
  EXPECT_EQ(0u, log.total_events());
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_TRUE(log.ExportJsonl().empty());
}

// ---- tracing -------------------------------------------------------

TEST(EngineTelemetry, RateZeroTracingAllocatesNothingOnTheHotPath) {
  EngineTelemetry telemetry(/*trace_sample_rate=*/0.0, /*audit_capacity=*/64);
  Counter* counter = telemetry.metrics().counter("hot_total");
  LatencyHistogram* hist = telemetry.metrics().histogram("hot_ms");

  // Warm-up (first-touch laziness anywhere would show in the measured
  // loop otherwise).
  {
    RequestTrace trace = telemetry.MaybeStartTrace();
    TraceStageTimer timer(&trace, TraceStage::kValidate);
    counter->Add(1);
    hist->Record(0.5);
    telemetry.FinishTrace(&trace, true);
  }

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    RequestTrace trace = telemetry.MaybeStartTrace();
    EXPECT_FALSE(trace.active());
    TraceStageTimer validate(&trace, TraceStage::kValidate);
    TraceStageTimer charge(&trace, TraceStage::kCharge);
    counter->Add(1);
    hist->Record(0.25);
    telemetry.FinishTrace(&trace, true);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
  EXPECT_TRUE(telemetry.SnapshotTraces().empty());
}

TEST(EngineTelemetry, RateOneTracesEverySubmitThroughAllStages) {
  EngineOptions options;
  options.seed = 3;
  options.trace_sample_rate = 1.0;
  QueryEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("s", 10.0).ok());

  constexpr int kSubmits = 5;
  for (int i = 0; i < kSubmits; ++i) {
    ASSERT_TRUE(engine.Submit(MakeRequest("s", "line", 0.01)).ok());
  }

  EngineTelemetry& telemetry = engine.telemetry();
  const std::vector<TraceRecord> traces = telemetry.SnapshotTraces();
  ASSERT_EQ(static_cast<size_t>(kSubmits), traces.size());
  for (const TraceRecord& trace : traces) {
    EXPECT_TRUE(trace.ok);
    for (TraceStage stage :
         {TraceStage::kValidate, TraceStage::kResolve, TraceStage::kPlan,
          TraceStage::kCharge, TraceStage::kRelease}) {
      EXPECT_GE(trace.stage_ms[static_cast<size_t>(stage)], 0.0)
          << TraceStageName(stage);
    }
    // Async-only stages never ran on the synchronous path.
    EXPECT_LT(trace.stage_ms[static_cast<size_t>(TraceStage::kQueueWait)],
              0.0);
  }
  EXPECT_EQ(static_cast<uint64_t>(kSubmits),
            telemetry.stage_histogram(TraceStage::kValidate)->count());
  EXPECT_EQ(static_cast<uint64_t>(kSubmits),
            telemetry.stage_histogram(TraceStage::kRelease)->count());
  const std::string jsonl = telemetry.TracesJsonl();
  EXPECT_NE(std::string::npos, jsonl.find("\"validate\""));
  EXPECT_NE(std::string::npos, jsonl.find("\"ok\":true"));
}

// ---- async pipeline coverage (also exercised under TSan in CI) -----

TEST(EngineTelemetry, AsyncPipelineFeedsRegistryAndTraces) {
  EngineOptions options;
  options.seed = 5;
  options.trace_sample_rate = 1.0;
  options.async_workers = 3;
  AsyncQueryEngine async(options);
  QueryEngine& engine = async.engine();
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("s", 10.0).ok());

  constexpr int kAsyncSubmits = 16;
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < kAsyncSubmits; ++i) {
    futures.push_back(async.SubmitAsync(MakeRequest("s", "line", 0.01)));
  }
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());

  std::shared_ptr<ResultStream> stream =
      async.SubmitStreamAsync(MakeRequest("s", "line", 0.01));
  StreamChunk chunk;
  while (stream->Next(&chunk).ValueOrDie() != StreamNext::kDone) {
  }
  async.Drain();

  MetricsRegistry& metrics = engine.telemetry().metrics();
  const uint64_t warm =
      metrics.histogram("engine_async_warm_latency_ms")->count();
  const uint64_t cold =
      metrics.histogram("engine_async_cold_latency_ms")->count();
  EXPECT_EQ(static_cast<uint64_t>(kAsyncSubmits), warm + cold);
  EXPECT_EQ(
      static_cast<uint64_t>(kAsyncSubmits) + 1,  // +1 for the stream task
      metrics.histogram("engine_async_queue_wait_warm_ms")->count() +
          metrics.histogram("engine_async_queue_wait_cold_ms")->count());
  EXPECT_GE(metrics.counter("engine_stream_chunks_total")->value(), 1u);

  // Every async submit and the stream carried a sampled trace with a
  // queue-wait stage.
  const std::vector<TraceRecord> traces = engine.telemetry().SnapshotTraces();
  EXPECT_EQ(static_cast<size_t>(kAsyncSubmits) + 1, traces.size());
  for (const TraceRecord& trace : traces) {
    EXPECT_GE(trace.stage_ms[static_cast<size_t>(TraceStage::kQueueWait)],
              0.0);
  }

  // The legacy stats() API is served from the same histograms.
  const AsyncStats stats = async.stats();
  EXPECT_EQ(warm, stats.warm.completed);
  EXPECT_EQ(cold, stats.cold.completed);
}

}  // namespace
}  // namespace blowfish
