// Randomized property sweeps over the transformational-equivalence
// machinery: random tree policies, random connected policies, and
// random workloads must satisfy the paper's identities
//
//   (P1) exact reconstruction:  P_G x_G lifts back to x,
//   (P2) answer preservation:   W x = W_G x_G + c(W, n),
//   (P3) Lemma 4.7:             ∆_W(G) = ∆_{W_G},
//   (P4) Lemma 4.9 (trees):     Blowfish neighbors <-> L1 distance 1,
//   (P5) Lemma 4.5 accounting:  certified stretch bounds the path
//                               length of every policy edge.

#include <gtest/gtest.h>

#include "core/sensitivity.h"
#include "core/subgraph_approx.h"
#include "core/transform.h"
#include "graph/algorithms.h"
#include "rng/rng.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Graph RandomTree(size_t k, Rng* rng) {
  Graph g(k);
  // Random attachment: vertex i links to a uniform earlier vertex.
  for (size_t i = 1; i < k; ++i) {
    g.AddEdge(i, static_cast<size_t>(rng->UniformInt(0, i - 1)));
  }
  return g;
}

Graph RandomConnectedGraph(size_t k, double extra_edge_prob, Rng* rng) {
  Graph g = RandomTree(k, rng);
  for (size_t u = 0; u < k; ++u) {
    for (size_t v = u + 1; v < k; ++v) {
      if (!g.HasEdge(u, v) && rng->Uniform() < extra_edge_prob) {
        g.AddEdge(u, v);
      }
    }
  }
  return g;
}

SparseMatrix RandomWorkloadMatrix(size_t q, size_t k, Rng* rng) {
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < q; ++r) {
    for (size_t c = 0; c < k; ++c) {
      if (rng->Uniform() < 0.4) {
        triplets.push_back(
            {r, c, static_cast<double>(rng->UniformInt(-3, 3))});
      }
    }
  }
  return SparseMatrix::FromTriplets(q, k, std::move(triplets));
}

Vector RandomDatabase(size_t k, Rng* rng) {
  Vector x(k);
  for (double& v : x) v = static_cast<double>(rng->UniformInt(0, 30));
  return x;
}

class EquivalencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalencePropertyTest, RandomTreePolicySatisfiesAllIdentities) {
  Rng rng(GetParam());
  const size_t k = 4 + static_cast<size_t>(rng.UniformInt(0, 12));
  Policy policy{"random-tree", DomainShape({k}), RandomTree(k, &rng)};
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  ASSERT_TRUE(t.is_tree());

  // (P1) reconstruction.
  const Vector x = RandomDatabase(k, &rng);
  const Vector xg = t.TransformDatabase(x);
  const Vector rebuilt = t.ReconstructHistogram(xg, t.ComponentTotals(x));
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(rebuilt[i], x[i], 1e-7);

  // (P2) answer preservation for a random workload.
  const SparseMatrix w = RandomWorkloadMatrix(6, k, &rng);
  const SparseMatrix wg = t.TransformWorkload(w);
  const Vector direct = w.MultiplyVector(x);
  const Vector via = w.MultiplyVector(rebuilt);
  for (size_t q = 0; q < direct.size(); ++q) {
    EXPECT_NEAR(direct[q], via[q], 1e-6);
  }
  EXPECT_EQ(wg.cols(), t.num_edges());

  // (P3) Lemma 4.7.
  EXPECT_NEAR(PolicySpecificSensitivity(w, policy), wg.MaxColumnL1(), 1e-9);

  // (P4) Lemma 4.9 on a sample of pairs.
  for (int trial = 0; trial < 10; ++trial) {
    const size_t u = static_cast<size_t>(rng.UniformInt(0, k - 1));
    const size_t v = static_cast<size_t>(rng.UniformInt(0, k - 1));
    if (u == v) continue;
    Vector y = x, z = x;
    z[u] -= 1.0;
    z[v] += 1.0;
    const double l1 =
        NormL1(Sub(t.TransformDatabase(y), t.TransformDatabase(z)));
    if (policy.graph.HasEdge(u, v)) {
      EXPECT_NEAR(l1, 1.0, 1e-9);
    } else {
      EXPECT_GT(l1, 1.0 + 1e-9);
    }
  }
}

TEST_P(EquivalencePropertyTest, RandomConnectedPolicyIdentities) {
  Rng rng(GetParam() ^ 0xABCDEF);
  const size_t k = 5 + static_cast<size_t>(rng.UniformInt(0, 10));
  Policy policy{"random-graph", DomainShape({k}),
                RandomConnectedGraph(k, 0.25, &rng)};
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();

  // (P1) reconstruction via the min-norm CG path.
  const Vector x = RandomDatabase(k, &rng);
  const Vector xg = t.TransformDatabase(x);
  const Vector rebuilt = t.ReconstructHistogram(xg, t.ComponentTotals(x));
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(rebuilt[i], x[i], 1e-6);

  // (P3) Lemma 4.7 holds for any connected policy.
  const SparseMatrix w = RandomWorkloadMatrix(5, k, &rng);
  EXPECT_NEAR(PolicySpecificSensitivity(w, policy),
              t.TransformWorkload(w).MaxColumnL1(), 1e-9);

  // (P5) spanning-tree stretch certificate is an upper bound on every
  // edge's path length and is attained by some edge.
  const Graph tree = BfsSpanningTree(policy.graph, 0);
  const int64_t stretch = MaxEdgeStretch(policy.graph, tree);
  ASSERT_GE(stretch, 1);
  int64_t attained = 0;
  for (const Graph::Edge& e : policy.graph.edges()) {
    const int64_t d = Distance(tree, e.u, e.v);
    ASSERT_GE(d, 1);
    EXPECT_LE(d, stretch);
    attained = std::max(attained, d);
  }
  EXPECT_EQ(attained, stretch);
}

TEST_P(EquivalencePropertyTest, RandomDisconnectedPolicyIdentities) {
  Rng rng(GetParam() ^ 0x1234567);
  // Two random components of random sizes.
  const size_t k1 = 3 + static_cast<size_t>(rng.UniformInt(0, 5));
  const size_t k2 = 3 + static_cast<size_t>(rng.UniformInt(0, 5));
  const size_t k = k1 + k2;
  Graph g(k);
  {
    const Graph a = RandomTree(k1, &rng);
    for (const Graph::Edge& e : a.edges()) g.AddEdge(e.u, e.v);
    const Graph b = RandomConnectedGraph(k2, 0.3, &rng);
    for (const Graph::Edge& e : b.edges()) g.AddEdge(k1 + e.u, k1 + e.v);
  }
  Policy policy{"random-disconnected", DomainShape({k}), g};
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  EXPECT_EQ(t.reduction().removed.size(), 2u);

  const Vector x = RandomDatabase(k, &rng);
  const Vector rebuilt = t.ReconstructHistogram(t.TransformDatabase(x),
                                                t.ComponentTotals(x));
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(rebuilt[i], x[i], 1e-6);

  const SparseMatrix w = RandomWorkloadMatrix(4, k, &rng);
  EXPECT_NEAR(PolicySpecificSensitivity(w, policy),
              t.TransformWorkload(w).MaxColumnL1(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalencePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace blowfish
