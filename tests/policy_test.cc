// Policy factories and their structural invariants.

#include <gtest/gtest.h>

#include "core/policy.h"
#include "graph/algorithms.h"

namespace blowfish {
namespace {

TEST(Policy, UnboundedDpIsStarToBottom) {
  const Policy p = UnboundedDpPolicy(5);
  EXPECT_EQ(p.name, "unbounded-DP");
  EXPECT_EQ(p.graph.num_edges(), 5u);
  EXPECT_EQ(p.graph.num_bottom_edges(), 5u);
  EXPECT_EQ(p.domain_size(), 5u);
}

TEST(Policy, BoundedDpIsComplete) {
  const Policy p = BoundedDpPolicy(6);
  EXPECT_EQ(p.graph.num_edges(), 15u);
  EXPECT_FALSE(p.graph.has_bottom());
}

TEST(Policy, LineIsPath) {
  const Policy p = LinePolicy(7);
  EXPECT_EQ(p.name, "G^1_7");
  EXPECT_EQ(p.graph.num_edges(), 6u);
  EXPECT_TRUE(IsTree(p.graph));
  EXPECT_EQ(Distance(p.graph, 0, 6), 6);
}

TEST(Policy, Theta1DEdgeCount) {
  const Policy p = Theta1DPolicy(10, 3);
  EXPECT_EQ(p.name, "G^3_10");
  // k-1 + k-2 + k-3 edges.
  EXPECT_EQ(p.graph.num_edges(), 9u + 8u + 7u);
}

TEST(Policy, GridPolicyNaming) {
  const Policy p = GridPolicy(DomainShape({4, 6}), 2);
  EXPECT_EQ(p.name, "G^2_{4x6}");
  EXPECT_EQ(p.domain.num_dims(), 2u);
  // Every edge within L1 distance 2.
  for (const Graph::Edge& e : p.graph.edges()) {
    EXPECT_LE(p.domain.L1Distance(e.u, e.v), 2u);
  }
}

TEST(Policy, GridThetaOneMatchesLatticeDistances) {
  const Policy p = GridPolicy(DomainShape({3, 3}), 1);
  // dist_G equals L1 grid distance (Equation 1's metric semantics).
  for (size_t u = 0; u < 9; ++u) {
    for (size_t v = 0; v < 9; ++v) {
      EXPECT_EQ(Distance(p.graph, u, v),
                static_cast<int64_t>(p.domain.L1Distance(u, v)));
    }
  }
}

TEST(Policy, SensitiveAttributeComponents) {
  // Domain (3 ages) x (2 diagnoses); diagnosis sensitive -> 3
  // components, each a K2.
  const DomainShape domain({3, 2});
  const Policy p = SensitiveAttributePolicy(domain, {1});
  size_t components = 0;
  ConnectedComponents(p.graph, &components);
  EXPECT_EQ(components, 3u);
  EXPECT_EQ(p.graph.num_edges(), 3u);
}

TEST(Policy, GridDistancesScaleWithTheta) {
  // Equation (1): moving a tuple from u to v changes output odds by at
  // most exp(eps * ceil(d(u,v)/θ)) — dist_G is the ceil term.
  const DomainShape domain({6, 6});
  const Policy p2 = GridPolicy(domain, 2);
  const size_t a = domain.Flatten({0, 0});
  const size_t b = domain.Flatten({5, 5});
  // L1 distance 10, θ=2 -> graph distance 5.
  EXPECT_EQ(Distance(p2.graph, a, b), 5);
}

}  // namespace
}  // namespace blowfish
