// DAWA — the data-dependent baseline [14] and the inner mechanism of
// the paper's "Trans + Dawa" Blowfish variants.

#include <gtest/gtest.h>

#include "mech/dawa.h"
#include "mech/error.h"
#include "mech/laplace.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(Dawa, PartitionMergesUniformRegions) {
  DawaMechanism mech;
  // Noise-free cost model: a constant region should become few large
  // buckets rather than singletons.
  Vector flat(64, 10.0);
  const std::vector<size_t> ends = mech.ChoosePartition(flat, 1.0);
  EXPECT_LT(ends.size(), 10u);
  EXPECT_EQ(ends.back(), 64u);
}

TEST(Dawa, PartitionSplitsAtSharpEdges) {
  DawaMechanism mech;
  Vector step(64, 0.0);
  for (size_t i = 32; i < 64; ++i) step[i] = 1000.0;
  const std::vector<size_t> ends = mech.ChoosePartition(step, 1.0);
  // The boundary at 32 must be a bucket edge: merging across it would
  // cost ~ 16 * 1000 in deviation versus ~1 for the split.
  EXPECT_TRUE(std::find(ends.begin(), ends.end(), 32u) != ends.end());
}

TEST(Dawa, PartitionEndsAreValid) {
  DawaMechanism mech;
  Rng rng(1);
  Vector y(100);
  for (double& v : y) v = rng.Uniform(0, 50);
  const std::vector<size_t> ends = mech.ChoosePartition(y, 0.5);
  EXPECT_EQ(ends.back(), 100u);
  for (size_t i = 1; i < ends.size(); ++i) EXPECT_LT(ends[i - 1], ends[i]);
}

TEST(Dawa, PreservesTotalInExpectation) {
  DawaMechanism mech;
  Vector x(128, 0.0);
  for (size_t i = 0; i < 128; i += 16) x[i] = 100.0;
  Rng rng(2);
  double mean_total = 0.0;
  const size_t trials = 500;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech.Run(x, 1.0, &rng);
    mean_total += Sum(est) / trials;
  }
  EXPECT_NEAR(mean_total, Sum(x), 40.0);
}

TEST(Dawa, BeatsLaplaceOnSparseDataAtSmallEpsilon) {
  // The paper's Figures 8-9 message: DAWA wins on sparse datasets
  // (like E, F, G) at small ε, where merging zero-runs dominates; at
  // large ε the Laplace mechanism's per-cell noise is already below
  // DAWA's approximation bias (Section 6 reports the same flip).
  const size_t k = 1024;
  const DomainShape domain({k});
  Vector x(k, 0.0);
  Rng data_rng(3);
  for (size_t i = 0; i < 25; ++i) {
    x[data_rng.UniformInt(0, k - 1)] = data_rng.Uniform(50, 500);
  }
  const RangeWorkload w = HistogramRanges(domain);
  DawaMechanism dawa;
  LaplaceMechanism laplace;
  const double eps = 0.01;
  const double dawa_err =
      MeasureError([&](const Vector& db, double e,
                       Rng* rng) { return dawa.Run(db, e, rng); },
                   w, x, eps, 5, 10)
          .mean;
  const double laplace_err =
      MeasureError([&](const Vector& db, double e,
                       Rng* rng) { return laplace.Run(db, e, rng); },
                   w, x, eps, 5, 10)
          .mean;
  EXPECT_LT(dawa_err, laplace_err);
}

TEST(Dawa, BudgetFractionIsConfigurable) {
  DawaMechanism::Options options;
  options.partition_budget_fraction = 0.5;
  DawaMechanism mech(options);
  Vector x(32, 1.0);
  Rng rng(4);
  const Vector est = mech.Run(x, 1.0, &rng);
  EXPECT_EQ(est.size(), 32u);
}

TEST(Hilbert, OrderIsAPermutation) {
  for (auto [rows, cols] : {std::pair<size_t, size_t>{4, 4},
                            {8, 8},
                            {5, 7},
                            {25, 25},
                            {1, 9}}) {
    const std::vector<size_t> order = HilbertOrder(rows, cols);
    ASSERT_EQ(order.size(), rows * cols);
    std::vector<bool> seen(rows * cols, false);
    for (size_t idx : order) {
      ASSERT_LT(idx, rows * cols);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(Hilbert, ConsecutiveCellsAreAdjacent) {
  // The Hilbert curve on a power-of-two square visits 4-adjacent cells.
  const size_t n = 16;
  const std::vector<size_t> order = HilbertOrder(n, n);
  for (size_t p = 1; p < order.size(); ++p) {
    const size_t a = order[p - 1], b = order[p];
    const size_t ai = a / n, aj = a % n, bi = b / n, bj = b % n;
    const size_t dist = (ai > bi ? ai - bi : bi - ai) +
                        (aj > bj ? aj - bj : bj - aj);
    EXPECT_EQ(dist, 1u) << "position " << p;
  }
}

TEST(Hilbert2DAdapter, RoundTripsEstimates) {
  const DomainShape domain({6, 9});
  // Identity inner mechanism: adapter must return the input exactly.
  class IdentityMech : public HistogramMechanism {
   public:
    Vector Run(const Vector& x, double, Rng*) const override { return x; }
    std::string name() const override { return "id"; }
  };
  Hilbert2DAdapter adapter(domain, std::make_shared<IdentityMech>());
  Vector x(domain.size());
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  Rng rng(5);
  EXPECT_EQ(adapter.Run(x, 1.0, &rng), x);
}

TEST(Hilbert2DAdapter, DawaOnClusteredGrid) {
  // 2D DAWA should beat 2D Laplace on spatially clustered sparse data
  // (the Twitter-dataset setting).
  const size_t k = 32;
  const DomainShape domain({k, k});
  Vector x(k * k, 0.0);
  for (size_t i = 10; i < 14; ++i)
    for (size_t j = 20; j < 24; ++j) x[i * k + j] = 200.0;
  const RangeWorkload w = HistogramRanges(domain);
  Hilbert2DAdapter dawa2d(domain, std::make_shared<DawaMechanism>());
  LaplaceMechanism laplace;
  const double eps = 0.01;
  const double dawa_err =
      MeasureError([&](const Vector& db, double e,
                       Rng* rng) { return dawa2d.Run(db, e, rng); },
                   w, x, eps, 5, 20)
          .mean;
  const double laplace_err =
      MeasureError([&](const Vector& db, double e,
                       Rng* rng) { return laplace.Run(db, e, rng); },
                   w, x, eps, 5, 20)
          .mean;
  EXPECT_LT(dawa_err, laplace_err);
}

}  // namespace
}  // namespace blowfish
