// Blowfish mechanisms for tree-reducible policies: Algorithm 1 /
// Theorem 5.2 (1D ranges under G¹_k with Θ(1/ε²) error independent of
// domain size), the consistency variants (Section 5.4.2), and the Gθ_k
// spanner mechanisms (Theorem 5.5).

#include <gtest/gtest.h>

#include "core/data_dependent.h"
#include "core/mechanisms_1d.h"
#include "mech/dawa.h"
#include "mech/error.h"
#include "mech/laplace.h"
#include "mech/privelet.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

EstimatorFn AsEstimator(const BlowfishMechanism& mech) {
  return [&mech](const Vector& x, double eps, Rng* rng) {
    return mech.Run(x, eps, rng);
  };
}

TEST(Algorithm1, UnbiasedHistogramRelease) {
  const size_t k = 16;
  const BlowfishMechanismPtr mech = MakeTransformedLaplace(k).ValueOrDie();
  Vector x(k);
  for (size_t i = 0; i < k; ++i) x[i] = static_cast<double>(i % 5);
  Rng rng(1);
  Vector mean(k, 0.0);
  const size_t trials = 5000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech->Run(x, 1.0, &rng);
    for (size_t i = 0; i < k; ++i) mean[i] += est[i] / trials;
  }
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(mean[i], x[i], 0.6);
}

TEST(Algorithm1, PreservesDatabaseSizeExactly) {
  // Under the bounded line policy n is public; the release must sum to
  // n in every run, not just in expectation.
  const size_t k = 32;
  const BlowfishMechanismPtr mech = MakeTransformedLaplace(k).ValueOrDie();
  Vector x(k, 3.0);
  Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    EXPECT_NEAR(Sum(mech->Run(x, 0.5, &rng)), Sum(x), 1e-6);
  }
}

// Theorem 5.2: range-query error under G¹_k is Θ(1/ε²) per query,
// *independent of k* — the headline win over Privelet's O(log³k/ε²).
TEST(Algorithm1, RangeErrorIndependentOfDomainSize) {
  Rng qrng(3);
  Vector errors;
  for (size_t k : {128u, 2048u}) {
    const DomainShape domain({k});
    const RangeWorkload w = RandomRanges(domain, 500, &qrng);
    Vector x(k, 1.0);
    const BlowfishMechanismPtr mech = MakeTransformedLaplace(k).ValueOrDie();
    errors.push_back(MeasureError(AsEstimator(*mech), w, x, 1.0, 10, 5).mean);
  }
  // A 16x domain growth should leave the error within noise (ratio
  // close to 1, certainly below 3).
  EXPECT_LT(errors[1] / errors[0], 3.0);
  EXPECT_GT(errors[1] / errors[0], 1.0 / 3.0);
}

TEST(Algorithm1, RangeErrorMatchesTheory) {
  // Interior ranges cost two noisy prefix sums: ~2 * 2/ε² = 4/ε².
  const size_t k = 512;
  const DomainShape domain({k});
  Rng qrng(4);
  const RangeWorkload w = RandomRanges(domain, 800, &qrng);
  Vector x(k, 2.0);
  const double eps = 1.0;
  const BlowfishMechanismPtr mech = MakeTransformedLaplace(k).ValueOrDie();
  const double err = MeasureError(AsEstimator(*mech), w, x, eps, 20, 6).mean;
  EXPECT_NEAR(err, 4.0 / (eps * eps), 1.5);
}

TEST(Algorithm1, BeatsPriveletAtEqualBudget) {
  // The Section 6 comparison shape at any fixed ε.
  const size_t k = 1024;
  const DomainShape domain({k});
  Rng qrng(5);
  const RangeWorkload w = RandomRanges(domain, 300, &qrng);
  Vector x(k, 1.0);
  const BlowfishMechanismPtr blowfish = MakeTransformedLaplace(k).ValueOrDie();
  PriveletMechanism privelet{domain};
  const double eps = 0.1;
  const double b_err =
      MeasureError(AsEstimator(*blowfish), w, x, eps, 5, 7).mean;
  const double p_err = MeasureError(
                           [&](const Vector& db, double e, Rng* rng) {
                             return privelet.Run(db, e, rng);
                           },
                           w, x, eps / 2.0, 5, 7)
                           .mean;
  EXPECT_LT(b_err, p_err);
}

TEST(Consistency, ImprovesOnSparseData) {
  // Section 5.4.2: on sparse databases the prefix sums have few
  // distinct values and the isotonic projection collapses the noise.
  const size_t k = 1024;
  Vector x(k, 0.0);
  x[100] = 500.0;
  x[800] = 300.0;
  const DomainShape domain({k});
  const RangeWorkload w = HistogramRanges(domain);
  const BlowfishMechanismPtr plain = MakeTransformedLaplace(k).ValueOrDie();
  const BlowfishMechanismPtr consistent =
      MakeTransformedConsistent(k).ValueOrDie();
  const double eps = 0.1;
  const double err_plain =
      MeasureError(AsEstimator(*plain), w, x, eps, 5, 8).mean;
  const double err_cons =
      MeasureError(AsEstimator(*consistent), w, x, eps, 5, 8).mean;
  EXPECT_LT(err_cons, err_plain / 5.0);
}

TEST(Consistency, MonotoneGuardRejectsNonLinePolicies) {
  // Hθ_k transforms are not monotone; the guard must fire.
  TreeTransformMechanism::Options options;
  options.enforce_monotone = true;
  const LineSpanner spanner = BuildLineThetaSpanner(12, 3);
  const Policy policy{"H3_12", DomainShape({12}), spanner.graph};
  auto mech = TreeTransformMechanism::Create(
                  policy, std::make_shared<LaplaceMechanism>(), options)
                  .ValueOrDie();
  Vector x(12, 0.0);
  x[0] = 5.0;  // makes subtree masses non-monotone in edge order
  x[3] = 1.0;
  Rng rng(9);
  EXPECT_DEATH(mech->Run(x, 1.0, &rng), "monotone");
}

TEST(TransformedDawa, BeatsTransformedLaplaceOnStepData) {
  // The prefix sums of piecewise-constant data form long linear runs…
  // but DAWA keys on piecewise-*constant* structure, which prefix sums
  // of sparse data provide: long flat runs between spikes.
  const size_t k = 2048;
  Vector x(k, 0.0);
  x[64] = 2000.0;
  x[1500] = 1000.0;
  const DomainShape domain({k});
  Rng qrng(10);
  const RangeWorkload w = RandomRanges(domain, 300, &qrng);
  const BlowfishMechanismPtr laplace = MakeTransformedLaplace(k).ValueOrDie();
  const BlowfishMechanismPtr dawa =
      MakeTransformedDawa(k, /*with_consistency=*/false).ValueOrDie();
  // Small ε: the regime where data dependence pays (Section 6).
  const double eps = 0.1;
  const double err_laplace =
      MeasureError(AsEstimator(*laplace), w, x, eps, 5, 11).mean;
  const double err_dawa =
      MeasureError(AsEstimator(*dawa), w, x, eps, 5, 11).mean;
  EXPECT_LT(err_dawa, err_laplace);
}

TEST(ThetaMechanism, GuaranteeStatesOriginalPolicy) {
  const BlowfishMechanismPtr mech =
      MakeThetaTransformedLaplace(64, 4).ValueOrDie();
  const PrivacyGuarantee g = mech->Guarantee(0.5);
  EXPECT_NE(g.neighbor_model.find("G^4_64"), std::string::npos);
}

TEST(ThetaMechanism, StretchIsThree) {
  const Policy g = Theta1DPolicy(64, 4);
  const SpannerCertificate cert = LineThetaSpannerFor(g, 4).ValueOrDie();
  EXPECT_EQ(cert.stretch, 3);
}

// Theorem 5.5 shape: error under Gθ_k depends on θ, not on k.
TEST(ThetaMechanism, ErrorIndependentOfDomainSize) {
  Rng qrng(12);
  Vector errors;
  for (size_t k : {256u, 2048u}) {
    const DomainShape domain({k});
    const RangeWorkload w = RandomRanges(domain, 300, &qrng);
    Vector x(k, 1.0);
    const BlowfishMechanismPtr mech =
        MakeThetaTransformedLaplace(k, 4).ValueOrDie();
    errors.push_back(MeasureError(AsEstimator(*mech), w, x, 1.0, 8, 13).mean);
  }
  EXPECT_LT(errors[1] / errors[0], 3.0);
}

TEST(ThetaMechanism, GroupedPriveletRunsAndIsUnbiased) {
  const size_t k = 64;
  const BlowfishMechanismPtr mech =
      MakeThetaGroupedPrivelet(k, 4).ValueOrDie();
  Vector x(k, 2.0);
  Rng rng(14);
  Vector mean(k, 0.0);
  const size_t trials = 2000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech->Run(x, 2.0, &rng);
    for (size_t i = 0; i < k; ++i) mean[i] += est[i] / trials;
  }
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(mean[i], 2.0, 1.0);
}

TEST(ThetaMechanism, BudgetDividedByStretch) {
  // The spanner wrapper must run the inner mechanism at ε/3: measure
  // the variance of a released count and compare against the expected
  // tree-transform variance at ε/3 (for the θ-line, far from the ends,
  // a histogram cell is a difference of two noisy edge counts).
  const size_t k = 32;
  const BlowfishMechanismPtr mech =
      MakeThetaTransformedLaplace(k, 4).ValueOrDie();
  Vector x(k, 1.0);
  Rng rng(15);
  const double eps = 3.0;  // inner runs at eps/3 = 1.0
  const size_t cell = 9;   // a non-red interior vertex
  double var = 0.0;
  const size_t trials = 8000;
  for (size_t t = 0; t < trials; ++t) {
    const double v = mech->Run(x, eps, &rng)[cell];
    var += (v - x[cell]) * (v - x[cell]);
  }
  var /= trials;
  // A non-red vertex's count is a single edge weight: Var = 2(3/ε)²/9…
  // with inner ε' = 1, Laplace(1/ε') on its edge: Var = 2.
  EXPECT_NEAR(var, 2.0, 0.5);
}

class ThetaSweepTest : public ::testing::TestWithParam<size_t> {};

// Theorem 5.5 shape: grouped-Privelet error grows with θ (as log³θ)
// at fixed k; verified against the next-larger θ in the sweep.
TEST_P(ThetaSweepTest, GroupedPriveletErrorOrderedByTheta) {
  const size_t theta = GetParam();
  const size_t k = 1024;
  const DomainShape domain({k});
  Rng qrng(91);
  const RangeWorkload w = RandomRanges(domain, 400, &qrng);
  Vector x(k, 1.0);
  const auto measure = [&](size_t t) {
    const BlowfishMechanismPtr mech =
        MakeThetaGroupedPrivelet(k, t).ValueOrDie();
    return MeasureError(
               [&](const Vector& db, double e, Rng* rng) {
                 return mech->Run(db, e, rng);
               },
               w, x, 1.0, 8, 17)
        .mean;
  };
  EXPECT_LT(measure(theta), measure(theta * 4));
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweepTest, ::testing::Values(2u, 4u),
                         [](const auto& param_info) {
                           return "theta" + std::to_string(param_info.param);
                         });

TEST(TreeTransform, RejectsNonTreePolicies) {
  auto result = TreeTransformMechanism::Create(
      Theta1DPolicy(8, 2), std::make_shared<LaplaceMechanism>());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace blowfish
