// Synthetic dataset generators must reproduce Table 1's shape
// statistics (domain size, scale, % zero counts).

#include <gtest/gtest.h>

#include "data/generators.h"

namespace blowfish {
namespace {

struct Target {
  Dataset1D id;
  const char* name;
  double scale;
  double pct_zeros;
};

class Dataset1DTest : public ::testing::TestWithParam<Target> {};

TEST_P(Dataset1DTest, MatchesTable1Statistics) {
  const Target& t = GetParam();
  const Dataset ds = MakeDataset1D(t.id, 2015);
  EXPECT_EQ(ds.name, t.name);
  EXPECT_EQ(ds.domain.size(), 4096u);
  EXPECT_NEAR(ds.Scale(), t.scale, 2.0);  // largest-remainder is exact
  EXPECT_NEAR(ds.PercentZeroCounts(), t.pct_zeros, 0.5);
  for (double c : ds.counts) EXPECT_GE(c, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Dataset1DTest,
    ::testing::Values(Target{Dataset1D::kA, "A", 2.8e7, 6.20},
                      Target{Dataset1D::kB, "B", 2.0e7, 44.97},
                      Target{Dataset1D::kC, "C", 3.5e5, 21.17},
                      Target{Dataset1D::kD, "D", 3.4e5, 51.03},
                      Target{Dataset1D::kE, "E", 2.6e4, 96.61},
                      Target{Dataset1D::kF, "F", 1.8e4, 97.08},
                      Target{Dataset1D::kG, "G", 9.4e3, 74.80}),
    [](const ::testing::TestParamInfo<Target>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Datasets, DeterministicPerSeed) {
  const Dataset a = MakeDataset1D(Dataset1D::kD, 7);
  const Dataset b = MakeDataset1D(Dataset1D::kD, 7);
  EXPECT_EQ(a.counts, b.counts);
  const Dataset c = MakeDataset1D(Dataset1D::kD, 8);
  EXPECT_NE(a.counts, c.counts);
}

TEST(Datasets, AllSevenBuilt) {
  const std::vector<Dataset> all = MakeAllDatasets1D(2015);
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name, "A");
  EXPECT_EQ(all[6].name, "G");
}

TEST(Datasets, Aggregate1DPreservesScale) {
  const Dataset d = MakeDataset1D(Dataset1D::kD, 2015);
  const Dataset coarse = d.Aggregate1D(512);
  EXPECT_EQ(coarse.domain.size(), 512u);
  EXPECT_DOUBLE_EQ(coarse.Scale(), d.Scale());
  // Aggregation can only reduce sparsity.
  EXPECT_LE(coarse.PercentZeroCounts(), d.PercentZeroCounts());
}

TEST(Datasets, TwitterGridsMatchTable1Shape) {
  // T100: 84.93% zeros, T50: 69.24%, T25: 43.20% (Table 1); the
  // synthetic generator should land in the qualitative neighborhood
  // and preserve the ordering T25 < T50 < T100.
  const Dataset t100 = MakeTwitterDataset(100, 2015);
  const Dataset t50 = MakeTwitterDataset(50, 2015);
  const Dataset t25 = MakeTwitterDataset(25, 2015);
  EXPECT_EQ(t100.domain.dims(), (std::vector<size_t>{100, 100}));
  EXPECT_DOUBLE_EQ(t100.Scale(), 190000.0);
  EXPECT_DOUBLE_EQ(t50.Scale(), 190000.0);
  EXPECT_GT(t100.PercentZeroCounts(), t50.PercentZeroCounts());
  EXPECT_GT(t50.PercentZeroCounts(), t25.PercentZeroCounts());
  EXPECT_NEAR(t100.PercentZeroCounts(), 84.93, 10.0);
  EXPECT_NEAR(t50.PercentZeroCounts(), 69.24, 12.0);
  EXPECT_NEAR(t25.PercentZeroCounts(), 43.20, 15.0);
}

}  // namespace
}  // namespace blowfish
