// The live operability plane: per-tenant labeled metric families,
// ε burn-rate alerting, the always-on flight recorder, and the
// in-process /metrics + /healthz scrape server.
//
// What these tests pin down:
//   - the burn-rate tracker trips on the exact charge a scripted
//     spend schedule says it should — and only that one
//   - /healthz answers 200 while charges are durable and flips to 503
//     the moment the journal is fault-injected into poisoning
//   - a budget-refusal burst fires the flight recorder's incident
//     detector once, and the auto-dump carries the refused requests
//     with their tenant class and ε intact
//   - the Prometheus exposition is conformant: HELP/TYPE for every
//     family, label values escaped, histogram le-buckets cumulative
//     and non-decreasing
//   - labeled families cap their cardinality: tuple #max+1 collapses
//     into the `other` series instead of allocating
//   - scraping (PrometheusText/SnapshotJson/Healthz) races a Submit
//     flood without tearing (run under TSan in CI)

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/ledger_journal.h"
#include "engine/obs_server.h"
#include "engine/query_engine.h"
#include "gtest/gtest.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n, 0.0);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 7);
  return x;
}

QueryRequest MakeRequest(const std::string& session, const std::string& policy,
                         size_t domain, double epsilon) {
  QueryRequest request;
  request.session = session;
  request.policy = policy;
  request.workload = IdentityWorkload(domain);
  request.epsilon = epsilon;
  return request;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/blowfish_obs_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

// ------------------------------------------------- burn-rate alerting

// Budget 10, fast window 10 s, slow window 100 s, horizon 60 s, and a
// hand-driven clock. The schedule is chosen so the projections land
// on known sides of the horizon at every step:
//   t=0s  charge 1.0  -> fast 0.1 ε/s, balance 9, projects 90 s: calm
//   t=1s  charge 4.0  -> fast 0.5, balance 5, projects 10 s — but the
//          slow window still projects 100 s: the spike alone must not
//          page anyone
//   t=2s  charge 2.0  -> fast 0.7 (4.3 s) AND slow 0.07 (42.9 s) both
//          inside the horizon: the alert fires on exactly this charge
//   t=200s charge .001 -> both windows rotated empty: the alert clears
TEST(BurnRate, FiresOnTheExactScriptedCharge) {
  std::atomic<int64_t> now_us{0};
  BudgetAccountant accountant;
  BurnAlertLog alerts(64);
  BurnRateConfig config;
  config.enabled = true;
  config.fast_window_s = 10.0;
  config.slow_window_s = 100.0;
  config.alert_horizon_s = 60.0;
  config.now_micros = [&now_us] { return now_us.load(); };
  accountant.SetBurnRate(config, &alerts);

  const LedgerHandle ledger =
      accountant.OpenLedger("session/burn", 10.0).ValueOrDie();
  const ChargeTag tag;

  ASSERT_TRUE(accountant.Charge(&ledger, 1, 1.0, tag).ok());
  EXPECT_EQ(alerts.fired_total(), 0u);
  EXPECT_EQ(accountant.burn_alerts_active(), 0);

  now_us.store(1'000'000);
  ASSERT_TRUE(accountant.Charge(&ledger, 1, 4.0, tag).ok());
  EXPECT_EQ(alerts.fired_total(), 0u) << "slow window must gate the spike";

  now_us.store(2'000'000);
  ASSERT_TRUE(accountant.Charge(&ledger, 1, 2.0, tag).ok());
  EXPECT_EQ(alerts.fired_total(), 1u);
  EXPECT_EQ(accountant.burn_alerts_active(), 1);

  std::vector<BurnAlert> fired = alerts.Snapshot();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].fired);
  EXPECT_EQ(fired[0].ledger_id, "session/burn");
  EXPECT_EQ(fired[0].wall_micros, 2'000'000);
  EXPECT_DOUBLE_EQ(fired[0].remaining, 3.0);
  EXPECT_DOUBLE_EQ(fired[0].fast_rate, 0.7);
  EXPECT_DOUBLE_EQ(fired[0].slow_rate, 0.07);
  EXPECT_NEAR(fired[0].projected_s, 3.0 / 0.7, 1e-12);

  // A further hot charge while already alerting must not double-fire.
  now_us.store(3'000'000);
  ASSERT_TRUE(accountant.Charge(&ledger, 1, 0.5, tag).ok());
  EXPECT_EQ(alerts.fired_total(), 1u);
  EXPECT_EQ(accountant.burn_alerts_active(), 1);

  // Quiet period: both windows rotate out, the next charge clears.
  now_us.store(200'000'000);
  ASSERT_TRUE(accountant.Charge(&ledger, 1, 0.001, tag).ok());
  EXPECT_EQ(accountant.burn_alerts_active(), 0);
  std::vector<BurnAlert> all = alerts.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_FALSE(all[1].fired);
  EXPECT_EQ(all[1].ledger_id, "session/burn");

  // The JSONL export carries both transitions.
  const std::string jsonl = alerts.ExportJsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"fired\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"cleared\""), std::string::npos);
}

TEST(BurnRate, ClosingAnAlertingLedgerClearsIt) {
  std::atomic<int64_t> now_us{0};
  BudgetAccountant accountant;
  BurnAlertLog alerts(8);
  BurnRateConfig config;
  config.enabled = true;
  config.fast_window_s = 10.0;
  config.slow_window_s = 10.0;
  config.alert_horizon_s = 1e6;  // everything projects inside
  config.now_micros = [&now_us] { return now_us.load(); };
  accountant.SetBurnRate(config, &alerts);

  const LedgerHandle ledger =
      accountant.OpenLedger("session/doomed", 5.0).ValueOrDie();
  ASSERT_TRUE(accountant.Charge(&ledger, 1, 1.0, ChargeTag()).ok());
  ASSERT_EQ(accountant.burn_alerts_active(), 1);

  ASSERT_TRUE(accountant.CloseLedger(ledger).ok());
  EXPECT_EQ(accountant.burn_alerts_active(), 0);
  std::vector<BurnAlert> all = alerts.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_FALSE(all[1].fired);
}

// The engine plumbs the burn knobs through EngineOptions and exposes
// the state as gauges a scraper can read.
TEST(BurnRate, EngineExposesBurnGauges) {
  std::atomic<int64_t> now_us{0};
  EngineOptions options;
  options.seed = 7;
  options.burn_fast_window_s = 10.0;
  options.burn_slow_window_s = 10.0;
  options.burn_alert_horizon_s = 1e6;
  options.burn_clock_micros = [&now_us] { return now_us.load(); };
  QueryEngine engine(options);
  ASSERT_TRUE(
      engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("acme:1", 100.0).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("acme:1", "p", 8, 0.5)).ok());

  double value = -1.0;
  ASSERT_TRUE(engine.telemetry().metrics().TryReadValue(
      "engine_burn_alerts_active", &value));
  EXPECT_EQ(value, 2.0);  // session grant and policy cap both burn
  ASSERT_TRUE(engine.telemetry().metrics().TryReadValue(
      "engine_burn_alerts_fired_total", &value));
  EXPECT_EQ(value, 2.0);
}

// ------------------------------------------------------ scrape server

TEST(ObsServer, ServesMetricsVarzHealthzFlightz) {
  EngineOptions options;
  options.seed = 7;
  options.obs_port = 0;  // ephemeral
  QueryEngine engine(options);
  ASSERT_NE(engine.obs_server(), nullptr) << engine.obs_error().ToString();
  const int port = engine.obs_server()->port();
  ASSERT_GT(port, 0);

  ASSERT_TRUE(engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 4.0).ok());
  ASSERT_TRUE(engine.OpenSession("acme:1", 2.0).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("acme:1", "p", 8, 0.25)).ok());

  HttpResponse metrics = ObsHttpGet(port, "/metrics").ValueOrDie();
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("engine_submits_total 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("engine_tenant_requests_total{policy=\"p\","
                              "tenant=\"acme\"} 1"),
            std::string::npos);

  HttpResponse varz = ObsHttpGet(port, "/varz").ValueOrDie();
  EXPECT_EQ(varz.status, 200);
  EXPECT_NE(varz.body.find("\"engine_submits_total\""), std::string::npos);
  EXPECT_NE(varz.body.find("\"families\""), std::string::npos);

  HttpResponse healthz = ObsHttpGet(port, "/healthz").ValueOrDie();
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"ok\":true"), std::string::npos);

  HttpResponse flightz = ObsHttpGet(port, "/flightz").ValueOrDie();
  EXPECT_EQ(flightz.status, 200);
  EXPECT_NE(flightz.body.find("\"tenant\":\"acme\""), std::string::npos);

  EXPECT_EQ(ObsHttpGet(port, "/nope").ValueOrDie().status, 404);
  EXPECT_GE(engine.obs_server()->requests_served(), 5u);
}

TEST(ObsServer, HealthzFlipsTo503WhenDurabilityPoisons) {
  const std::string dir = MakeTempDir();
  JournalFaultPlan plan;
  FaultInjectingJournalIo io(PosixJournalIo(), &plan);
  EngineOptions options;
  options.seed = 7;
  options.obs_port = 0;
  options.journal_path = dir;
  options.journal_io = &io;
  auto engine = QueryEngine::Open(options).ValueOrDie();
  ASSERT_NE(engine->obs_server(), nullptr);
  const int port = engine->obs_server()->port();

  ASSERT_TRUE(engine->RegisterPolicy("p", LinePolicy(8), Ramp(8), 4.0).ok());
  ASSERT_TRUE(engine->OpenSession("acme:1", 2.0).ok());
  ASSERT_TRUE(engine->Submit(MakeRequest("acme:1", "p", 8, 0.1)).ok());
  EXPECT_EQ(ObsHttpGet(port, "/healthz").ValueOrDie().status, 200);

  // Data fsync fails AND the repair fsync fails: the journal's tail
  // state is unknowable, so it goes sticky-unavailable and the engine
  // fails closed — the exact state /healthz must surface as 503.
  plan.fail_sync_count = 2;
  plan.fail_sync_at = plan.sync_calls.load() + 1;
  const Status refused =
      engine->Submit(MakeRequest("acme:1", "p", 8, 0.1)).status();
  ASSERT_FALSE(refused.ok());
  ASSERT_EQ(refused.code(), StatusCode::kUnavailableDurability);

  HttpResponse sick = ObsHttpGet(port, "/healthz").ValueOrDie();
  EXPECT_EQ(sick.status, 503);
  EXPECT_NE(sick.body.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(sick.body.find("durability"), std::string::npos);

  // The durability refusal is an incident: the flight recorder must
  // have tripped on the very first one.
  EXPECT_TRUE(engine->telemetry().flight().incident_fired());
}

// ----------------------------------------------------- flight recorder

TEST(FlightRecorder, RefusalBurstFiresIncidentAndDumpsTenants) {
  const std::string dump_path = MakeTempDir() + "/flight.jsonl";
  EngineOptions options;
  options.seed = 7;
  options.flight_recorder_capacity = 256;
  options.flight_burst_window = 64;
  options.flight_burst_refusals = 8;
  options.flight_dump_path = dump_path;
  QueryEngine engine(options);

  ASSERT_TRUE(engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("acme:alice", 1.0).ok());

  // Healthy traffic first, then a refusal burst from one tenant.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Submit(MakeRequest("acme:alice", "p", 8, 0.01)).ok());
  }
  EXPECT_FALSE(engine.telemetry().flight().incident_fired());
  for (int i = 0; i < 8; ++i) {
    const Status refused =
        engine.Submit(MakeRequest("acme:alice", "p", 8, 5.0)).status();
    ASSERT_EQ(refused.code(), StatusCode::kOutOfRange);
  }
  EXPECT_TRUE(engine.telemetry().flight().incident_fired());

  // The ring holds both the run-up and the refusals, attributed.
  size_t ok_records = 0;
  size_t refused_records = 0;
  for (const FlightRecord& record : engine.telemetry().flight().Snapshot()) {
    EXPECT_STREQ(record.tenant, "acme");
    EXPECT_STREQ(record.policy, "p");
    EXPECT_EQ(record.lane, FlightLane::kSync);
    if (record.outcome == FlightOutcome::kOk) {
      ++ok_records;
      EXPECT_EQ(record.epsilon, 0.01);
    } else {
      ASSERT_EQ(record.outcome, FlightOutcome::kRefusedBudget);
      ++refused_records;
      EXPECT_EQ(record.epsilon, 5.0);
    }
  }
  EXPECT_EQ(ok_records, 20u);
  EXPECT_EQ(refused_records, 8u);

  // The incident auto-dumped the ring while it held the run-up.
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "incident must write " << dump_path;
  std::stringstream buffer;
  buffer << dump.rdbuf();
  const std::string jsonl = buffer.str();
  EXPECT_NE(jsonl.find("\"outcome\":\"refused_budget\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"eps\":5"), std::string::npos);

  // Exactly one incident per recorder lifetime: more refusals must
  // not re-dump (the dump keeps the *first* incident's run-up).
  for (int i = 0; i < 8; ++i) {
    (void)engine.Submit(MakeRequest("acme:alice", "p", 8, 5.0));
  }
  EXPECT_TRUE(engine.telemetry().flight().incident_fired());
}

TEST(FlightRecorder, HandleOnlyRequestsStillCarryTheirTenant) {
  EngineOptions options;
  options.seed = 7;
  options.flight_recorder_capacity = 64;
  QueryEngine engine(options);
  ASSERT_TRUE(engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 4.0).ok());
  ASSERT_TRUE(engine.OpenSession("fleet:worker-3", 2.0).ok());

  QueryRequest request;
  request.session_handle = engine.ResolveSession("fleet:worker-3").ValueOrDie();
  request.policy_handle = engine.ResolvePolicy("p").ValueOrDie();
  request.workload = IdentityWorkload(8);
  request.epsilon = 0.1;
  ASSERT_TRUE(engine.Submit(request).ok());

  std::vector<FlightRecord> records = engine.telemetry().flight().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].tenant, "fleet");
  EXPECT_STREQ(records[0].policy, "p");
}

// ------------------------------------------- exposition conformance

// A minimal exposition parser: enough structure to assert HELP/TYPE
// coverage and cumulative buckets without a real Prometheus client.
struct Exposition {
  std::set<std::string> help;  ///< metric names with a # HELP line
  std::set<std::string> type;  ///< metric names with a # TYPE line
  std::vector<std::string> samples;  ///< non-comment lines
};

Exposition ParseExposition(const std::string& text) {
  Exposition out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      out.help.insert(line.substr(7, line.find(' ', 7) - 7));
    } else if (line.rfind("# TYPE ", 0) == 0) {
      out.type.insert(line.substr(7, line.find(' ', 7) - 7));
    } else {
      out.samples.push_back(line);
    }
  }
  return out;
}

// The family a sample line belongs to: the name up to '{' or ' ',
// with histogram suffixes stripped.
std::string FamilyOf(const std::string& sample) {
  std::string name = sample.substr(0, sample.find_first_of("{ "));
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::string(suffix).size();
    if (name.size() > len && name.compare(name.size() - len, len, suffix) == 0) {
      return name.substr(0, name.size() - len);
    }
  }
  return name;
}

TEST(Exposition, EveryFamilyHasHelpAndType) {
  EngineOptions options;
  options.seed = 7;
  QueryEngine engine(options);
  ASSERT_TRUE(engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 4.0).ok());
  ASSERT_TRUE(engine.OpenSession("acme:1", 2.0).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("acme:1", "p", 8, 0.1)).ok());

  const Exposition exposition =
      ParseExposition(engine.telemetry().metrics().PrometheusText());
  ASSERT_FALSE(exposition.samples.empty());
  for (const std::string& sample : exposition.samples) {
    const std::string family = FamilyOf(sample);
    EXPECT_TRUE(exposition.help.count(family))
        << "missing # HELP for " << family << " (sample: " << sample << ")";
    EXPECT_TRUE(exposition.type.count(family))
        << "missing # TYPE for " << family << " (sample: " << sample << ")";
  }
  // Spot-check a real help string survived the plumbing.
  EXPECT_NE(engine.telemetry().metrics().PrometheusText().find(
                "# HELP engine_submits_total Submit attempts"),
            std::string::npos);
}

TEST(Exposition, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  CounterFamily* family = registry.counter_family(
      "esc_total", {"tenant", "policy"}, 8, "escape test");
  family->WithLabels("a\\b", "c\"d\ne")->Add(3);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(
      text.find("esc_total{tenant=\"a\\\\b\",policy=\"c\\\"d\\ne\"} 3"),
      std::string::npos)
      << text;
}

TEST(Exposition, HelpTextIsEscaped) {
  MetricsRegistry registry;
  registry.counter("weird_total", "line one\nline \\ two");
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP weird_total line one\\nline \\\\ two"),
            std::string::npos)
      << text;
}

TEST(Exposition, HistogramBucketsAreCumulativeAndNonDecreasing) {
  MetricsRegistry registry;
  LatencyHistogram* histogram = registry.histogram("lat_ms", "latency");
  for (double ms : {0.001, 0.05, 0.05, 1.0, 8.0, 8.0, 8.0, 250.0}) {
    histogram->Record(ms);
  }
  const std::string text = registry.PrometheusText();

  uint64_t previous = 0;
  uint64_t last_bucket = 0;
  uint64_t total = 0;
  bool saw_inf = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("lat_ms_bucket{", 0) == 0) {
      const uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
      ASSERT_GE(value, previous) << "buckets must be cumulative: " << line;
      previous = value;
      last_bucket = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    } else if (line.rfind("lat_ms_count ", 0) == 0) {
      total = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(last_bucket, total) << "+Inf bucket must equal _count";
}

// ------------------------------------------------ bounded cardinality

TEST(MetricFamily, OverflowCollapsesIntoOther) {
  MetricsRegistry registry;
  CounterFamily* family =
      registry.counter_family("cap_total", {"tenant"}, 2, "cap test");
  family->WithLabels("a")->Add(1);
  family->WithLabels("b")->Add(1);
  // Tuple #3 exceeds max_series: both lookups land on one shared
  // preallocated series — no allocation, no new exposition series.
  Counter* first = family->WithLabels("c");
  Counter* second = family->WithLabels("d");
  EXPECT_EQ(first, second);
  first->Add(5);
  EXPECT_EQ(family->size(), 2u);
  EXPECT_EQ(family->overflow_hits(), 2u);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("cap_total{tenant=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cap_total{tenant=\"other\"} 5"), std::string::npos);
  EXPECT_EQ(text.find("tenant=\"c\""), std::string::npos);
}

TEST(MetricFamily, EngineCapsTenantCardinality) {
  EngineOptions options;
  options.seed = 7;
  options.tenant_metrics_capacity = 4;
  QueryEngine engine(options);
  ASSERT_TRUE(engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 1e6).ok());
  // 8 distinct tenant classes against a 4-tuple budget.
  for (int t = 0; t < 8; ++t) {
    const std::string session = "tenant" + std::to_string(t) + ":s";
    ASSERT_TRUE(engine.OpenSession(session, 10.0).ok());
    ASSERT_TRUE(engine.Submit(MakeRequest(session, "p", 8, 0.01)).ok());
  }
  // The overflow series wears `other` in every label position — it is
  // one shared bucket, not a per-policy one.
  const std::string text = engine.telemetry().metrics().PrometheusText();
  EXPECT_NE(text.find("engine_tenant_requests_total{policy=\"other\","
                      "tenant=\"other\"} 4"),
            std::string::npos)
      << text;
}

// ------------------------------------------------- scrape-vs-write race

// Four submitters flood the engine while one thread scrapes every
// surface a handler serves. No assertion beyond "nothing tears" —
// this test exists to run under TSan (CI's engine_* sanitizer glob).
TEST(ObsConcurrency, ScrapesRaceSubmitsCleanly) {
  EngineOptions options;
  options.seed = 7;
  options.trace_sample_rate = 0.25;
  options.flight_recorder_capacity = 128;  // small: wraps under load
  options.tenant_metrics_capacity = 8;
  QueryEngine engine(options);
  ASSERT_TRUE(engine.RegisterPolicy("p", LinePolicy(8), Ramp(8), 1e9).ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 400;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    const std::string session = "writer" + std::to_string(w) + ":s";
    ASSERT_TRUE(engine.OpenSession(session, 1e9).ok());
    writers.emplace_back([&engine, session] {
      for (int i = 0; i < kPerWriter; ++i) {
        ASSERT_TRUE(engine.Submit(MakeRequest(session, "p", 8, 1e-6)).ok());
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread scraper([&engine, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string prom = engine.telemetry().metrics().PrometheusText();
      ASSERT_FALSE(prom.empty());
      const std::string json = engine.telemetry().metrics().SnapshotJson();
      ASSERT_FALSE(json.empty());
      (void)engine.telemetry().flight().Snapshot();
      (void)engine.Healthz();
    }
  });
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  double submits = 0.0;
  ASSERT_TRUE(engine.telemetry().metrics().TryReadValue("engine_submits_total",
                                                        &submits));
  EXPECT_EQ(submits, static_cast<double>(kWriters * kPerWriter));
  EXPECT_EQ(engine.telemetry().flight().total(),
            static_cast<uint64_t>(kWriters * kPerWriter));
}

}  // namespace
}  // namespace blowfish
