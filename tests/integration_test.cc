// End-to-end integration: the Section 6 experiment pipeline at reduced
// scale, checking the paper's qualitative conclusions hold through the
// full stack (datasets -> policies -> mechanisms -> error protocol).

#include <gtest/gtest.h>

#include "core/data_dependent.h"
#include "core/mechanisms_2d.h"
#include "data/generators.h"
#include "mech/dawa.h"
#include "mech/error.h"
#include "mech/laplace.h"
#include "mech/privelet.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

EstimatorFn AsEstimator(const BlowfishMechanism& mech) {
  return [&mech](const Vector& x, double eps, Rng* rng) {
    return mech.Run(x, eps, rng);
  };
}

// Figure 8c/g shape: for 1D ranges under G¹_k, every Blowfish variant
// beats its ε/2-DP counterpart by a wide margin on a real-shaped
// dataset.
TEST(Integration, Range1DBlowfishBeatsDpByOrdersOfMagnitude) {
  Dataset ds = MakeDataset1D(Dataset1D::kD, 2015).Aggregate1D(512);
  const size_t k = ds.domain.size();
  Rng qrng(1);
  const RangeWorkload w = RandomRanges(ds.domain, 500, &qrng);
  const double eps = 0.1;

  const BlowfishMechanismPtr trans_laplace =
      MakeTransformedLaplace(k).ValueOrDie();
  PriveletMechanism privelet{ds.domain};

  const double blowfish_err =
      MeasureError(AsEstimator(*trans_laplace), w, ds.counts, eps, 5, 2015)
          .mean;
  const double dp_err =
      MeasureError(
          [&](const Vector& db, double e, Rng* rng) {
            return privelet.Run(db, e, rng);
          },
          w, ds.counts, eps / 2.0, 5, 2015)
          .mean;
  // "2-3 orders of magnitude difference" in the paper; demand >= 10x
  // at this reduced scale.
  EXPECT_LT(blowfish_err * 10.0, dp_err);
}

// Figure 8b shape: for Hist under G¹_k, Transformed+Laplace is about a
// factor 2 better than ε/2 Laplace (the paper reports exactly this).
TEST(Integration, HistTransformedLaplaceFactorTwo) {
  Dataset ds = MakeDataset1D(Dataset1D::kB, 2015).Aggregate1D(1024);
  const size_t k = ds.domain.size();
  const RangeWorkload w = HistogramRanges(ds.domain);
  const double eps = 0.1;
  const BlowfishMechanismPtr trans = MakeTransformedLaplace(k).ValueOrDie();
  LaplaceMechanism laplace;
  const double blowfish_err =
      MeasureError(AsEstimator(*trans), w, ds.counts, eps, 10, 7).mean;
  const double dp_err =
      MeasureError(
          [&](const Vector& db, double e, Rng* rng) {
            return laplace.Run(db, e, rng);
          },
          w, ds.counts, eps / 2.0, 10, 7)
          .mean;
  EXPECT_NEAR(dp_err / blowfish_err, 2.0, 0.8);
}

// Section 6's sparse-data story: consistency harvests sparsity.
TEST(Integration, ConsistencyShinesOnSparseDatasetE) {
  Dataset ds = MakeDataset1D(Dataset1D::kE, 2015).Aggregate1D(1024);
  const RangeWorkload w = HistogramRanges(ds.domain);
  const double eps = 0.1;
  const BlowfishMechanismPtr plain =
      MakeTransformedLaplace(ds.domain.size()).ValueOrDie();
  const BlowfishMechanismPtr cons =
      MakeTransformedConsistent(ds.domain.size()).ValueOrDie();
  const double err_plain =
      MeasureError(AsEstimator(*plain), w, ds.counts, eps, 5, 9).mean;
  const double err_cons =
      MeasureError(AsEstimator(*cons), w, ds.counts, eps, 5, 9).mean;
  EXPECT_LT(err_cons, err_plain);
}

// Figure 8d shape: under G⁴_k the Blowfish error does not grow with
// domain size while the DP baseline's does.
TEST(Integration, ThetaPolicyErrorFlatAcrossDomainSizes) {
  const Dataset base = MakeDataset1D(Dataset1D::kD, 2015);
  Rng qrng(2);
  Vector blowfish_err, dp_err;
  for (size_t k : {512u, 2048u}) {
    const Dataset ds = base.Aggregate1D(k);
    const RangeWorkload w = RandomRanges(ds.domain, 300, &qrng);
    const double eps = 1.0;
    const BlowfishMechanismPtr mech =
        MakeThetaTransformedLaplace(k, 4).ValueOrDie();
    blowfish_err.push_back(
        MeasureError(AsEstimator(*mech), w, ds.counts, eps, 5, 3).mean);
    PriveletMechanism privelet{ds.domain};
    dp_err.push_back(MeasureError(
                         [&](const Vector& db, double e, Rng* rng) {
                           return privelet.Run(db, e, rng);
                         },
                         w, ds.counts, eps / 2.0, 5, 3)
                         .mean);
  }
  EXPECT_LT(blowfish_err[1] / blowfish_err[0], 2.5);  // flat
  EXPECT_GT(dp_err[1] / dp_err[0], 1.5);              // grows
}

// Figure 8a shape on a synthetic Twitter grid: Transformed+Privelet
// under G¹_{k²} beats ε/2 Privelet.
TEST(Integration, TwitterGridBlowfishBeatsPrivelet) {
  const Dataset ds = MakeTwitterDataset(25, 2015);
  Rng qrng(3);
  const RangeWorkload w = RandomRanges(ds.domain, 300, &qrng);
  const double eps = 0.1;
  auto blowfish =
      GridBlowfishMechanism::Create(GridPolicy(ds.domain, 1)).ValueOrDie();
  PriveletMechanism privelet{ds.domain};
  const Vector xg = blowfish->PrecomputeTransformed(ds.counts);
  const double n = Sum(ds.counts);
  const double b_err =
      MeasureError(
          [&](const Vector&, double e, Rng* rng) {
            return blowfish->RunOnTransformed(xg, n, e, rng);
          },
          w, ds.counts, eps, 5, 4)
          .mean;
  const double p_err =
      MeasureError(
          [&](const Vector& db, double e, Rng* rng) {
            return privelet.Run(db, e, rng);
          },
          w, ds.counts, eps / 2.0, 5, 4)
          .mean;
  EXPECT_LT(b_err, p_err);
}

// Privacy accounting sanity across the public API: guarantees carry
// the requested ε and the original policy.
TEST(Integration, GuaranteesNameRequestedEpsilonAndPolicy) {
  const BlowfishMechanismPtr a = MakeTransformedLaplace(64).ValueOrDie();
  EXPECT_EQ(a->Guarantee(0.25).epsilon, 0.25);
  const BlowfishMechanismPtr b = MakeThetaTransformedDawa(64, 4).ValueOrDie();
  EXPECT_NE(b->Guarantee(1.0).neighbor_model.find("G^4_64"),
            std::string::npos);
}

}  // namespace
}  // namespace blowfish
