// Exponential mechanism + the Theorem 4.4 negative-result witnesses.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/builders.h"
#include "mech/exponential.h"

namespace blowfish {
namespace {

TEST(Exponential, DistributionNormalizes) {
  ExponentialMechanism mech(4, [](size_t x, size_t o) {
    return std::fabs(static_cast<double>(x) - static_cast<double>(o));
  });
  const Vector p = mech.Distribution(1, 0.7);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Loss 0 gets the highest probability.
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[1], p[3]);
}

TEST(Exponential, SamplesFollowDistribution) {
  ExponentialMechanism mech(3, [](size_t x, size_t o) {
    return x == o ? 0.0 : 1.0;
  });
  Rng rng(1);
  const Vector p = mech.Distribution(0, 2.0);
  std::vector<size_t> counts(3, 0);
  const size_t trials = 60000;
  for (size_t t = 0; t < trials; ++t) ++counts[mech.Sample(0, 2.0, &rng)];
  for (size_t o = 0; o < 3; ++o) {
    EXPECT_NEAR(static_cast<double>(counts[o]) / trials, p[o], 0.01);
  }
}

// The mechanism of Theorem 4.4's proof: losses are graph distances, so
// for any policy-neighbor pair (u, v) the log-odds are bounded by
// ε (loss shift) + ε (normalizer shift) = 2ε; with distances the
// Blowfish guarantee under G holds at 2ε for every edge.
TEST(Exponential, CycleMechanismSatisfiesBlowfishOnEdges) {
  const size_t n = 5;
  const Graph cycle = CycleGraph(n);
  ExponentialMechanism mech(n, [&](size_t x, size_t o) {
    return static_cast<double>(Distance(cycle, x, o));
  });
  const double eps = 0.8;
  for (const Graph::Edge& e : cycle.edges()) {
    EXPECT_LE(mech.MaxLogRatio(e.u, e.v, eps), 2.0 * eps + 1e-9);
  }
}

// Contrast: vertices far apart in the cycle leak proportionally more —
// the mechanism is data dependent and its privacy degrades with
// dist_G, exactly the behaviour Equation (1) describes.
TEST(Exponential, CycleMechanismLeaksMoreAcrossLongDistances) {
  const size_t n = 9;
  const Graph cycle = CycleGraph(n);
  ExponentialMechanism mech(n, [&](size_t x, size_t o) {
    return static_cast<double>(Distance(cycle, x, o));
  });
  const double eps = 1.0;
  const double near = mech.MaxLogRatio(0, 1, eps);   // dist 1
  const double far = mech.MaxLogRatio(0, 4, eps);    // dist 4
  EXPECT_GT(far, near + eps);
}

// The structural core of Theorem 4.4: odd cycles admit no isometric L1
// embedding, so no P_G-style linear transform can map cycle neighbors
// exactly to DP neighbors. We verify the distance distortion for the
// natural tree-based embedding: some cycle edge stretches to n-1.
TEST(Exponential, OddCycleHasNoIsometricTreeEmbedding) {
  const size_t n = 7;
  const Graph cycle = CycleGraph(n);
  int64_t best_stretch = INT64_MAX;
  for (size_t root = 0; root < n; ++root) {
    const Graph tree = BfsSpanningTree(cycle, root);
    best_stretch = std::min(best_stretch, MaxEdgeStretch(cycle, tree));
  }
  EXPECT_EQ(best_stretch, static_cast<int64_t>(n - 1));
}

}  // namespace
}  // namespace blowfish
