#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/builders.h"
#include "graph/graph.h"

namespace blowfish {
namespace {

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, Graph::kBottom);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(Graph::kBottom, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.has_bottom());
  EXPECT_EQ(g.num_bottom_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(GraphDeath, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_DEATH(g.AddEdge(1, 0), "duplicate");
  EXPECT_DEATH(g.AddEdge(2, 2), "self loops");
  EXPECT_DEATH(g.AddEdge(0, 7), "out of range");
}

TEST(DomainShape, FlattenUnflattenRoundTrip) {
  DomainShape d({3, 4, 5});
  EXPECT_EQ(d.size(), 60u);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.Flatten(d.Unflatten(i)), i);
  }
  EXPECT_EQ(d.Flatten({1, 2, 3}), 1u * 20 + 2u * 5 + 3u);
}

TEST(DomainShape, L1Distance) {
  DomainShape d({4, 4});
  EXPECT_EQ(d.L1Distance(d.Flatten({0, 0}), d.Flatten({2, 3})), 5u);
  EXPECT_EQ(d.L1Distance(5, 5), 0u);
}

TEST(Builders, LineGraphShape) {
  const Graph g = LineGraph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(IsTree(g));
  EXPECT_EQ(Distance(g, 0, 4), 4);
}

TEST(Builders, CycleGraphShape) {
  const Graph g = CycleGraph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_FALSE(IsTree(g));
  EXPECT_EQ(Distance(g, 0, 3), 3);
  EXPECT_EQ(Distance(g, 0, 5), 1);
}

TEST(Builders, CompleteGraphShape) {
  const Graph g = CompleteGraph(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(Distance(g, 0, 4), 1);
}

TEST(Builders, StarBottomIsIdentityPolicy) {
  const Graph g = StarBottomGraph(4);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_bottom_edges(), 4u);
  EXPECT_TRUE(IsTree(g));  // star through ⊥
  EXPECT_EQ(Distance(g, 0, 3), 2);  // via ⊥
}

TEST(Builders, DistanceThreshold1DMatchesDefinition) {
  // Gθ_k: edge iff |i - j| <= θ (Section 5.1).
  DomainShape domain({7});
  const Graph g = DistanceThresholdGraph(domain, 2);
  size_t expected = 0;
  for (size_t i = 0; i < 7; ++i)
    for (size_t j = i + 1; j < 7; ++j)
      if (j - i <= 2) ++expected;
  EXPECT_EQ(g.num_edges(), expected);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(Builders, DistanceThreshold2DMatchesDefinition) {
  DomainShape domain({4, 4});
  const Graph g = DistanceThresholdGraph(domain, 2);
  // Verify against brute force membership.
  for (size_t a = 0; a < 16; ++a) {
    for (size_t b = a + 1; b < 16; ++b) {
      const bool expected = domain.L1Distance(a, b) <= 2;
      EXPECT_EQ(g.HasEdge(a, b), expected) << a << "," << b;
    }
  }
}

TEST(Builders, UnitGridIs2DLattice) {
  DomainShape domain({3, 5});
  const Graph g = DistanceThresholdGraph(domain, 1);
  EXPECT_EQ(g.num_edges(), 2u * 5 + 3u * 4);  // vertical + horizontal
}

TEST(Builders, SensitiveAttributeGraphIsDisconnected) {
  // 2 attributes of size 3 and 2; only attribute 0 sensitive: values
  // differing in attribute 1 are never connected.
  DomainShape domain({3, 2});
  const Graph g = SensitiveAttributeGraph(domain, {0});
  size_t n_comp = 0;
  ConnectedComponents(g, &n_comp);
  EXPECT_EQ(n_comp, 2u);  // one component per attribute-1 value
  EXPECT_TRUE(g.HasEdge(domain.Flatten({0, 0}), domain.Flatten({2, 0})));
  EXPECT_FALSE(g.HasEdge(domain.Flatten({0, 0}), domain.Flatten({0, 1})));
}

TEST(Algorithms, BfsDistancesWithBottom) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, Graph::kBottom);
  const std::vector<int64_t> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], 2);   // ⊥ entry is last
  EXPECT_EQ(dist[2], -1);  // isolated vertex
}

TEST(Algorithms, ConnectivityAndComponents) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_FALSE(IsConnected(g));
  size_t n_comp = 0;
  const std::vector<size_t> comp = ConnectedComponents(g, &n_comp);
  EXPECT_EQ(n_comp, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Algorithms, BottomMergesComponents) {
  // Two cliques each wired to ⊥ are one component through ⊥.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.AddEdge(0, Graph::kBottom);
  g.AddEdge(2, Graph::kBottom);
  EXPECT_TRUE(IsConnected(g));
}

TEST(Algorithms, BfsSpanningTreeIsTree) {
  const Graph g = CycleGraph(8);
  const Graph t = BfsSpanningTree(g, 0);
  EXPECT_TRUE(IsTree(t));
  EXPECT_EQ(t.num_edges(), 7u);
}

TEST(Algorithms, MaxEdgeStretchCycleVsSpanningTree) {
  // Dropping one edge of an n-cycle stretches that edge to n-1
  // (Section 4.3's discussion).
  const Graph g = CycleGraph(9);
  const Graph t = BfsSpanningTree(g, 0);
  EXPECT_EQ(MaxEdgeStretch(g, t), 8);
}

TEST(Algorithms, MaxEdgeStretchDisconnected) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Graph h(3);
  h.AddEdge(0, 1);
  EXPECT_EQ(MaxEdgeStretch(g, h), -1);
}

TEST(Algorithms, IsTreeCountsBottom) {
  // Path 0-1-⊥: 3 vertices (incl ⊥), 2 edges -> tree.
  Graph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, Graph::kBottom);
  EXPECT_TRUE(IsTree(g));
  // Adding 0-⊥ creates a cycle through ⊥.
  g.AddEdge(0, Graph::kBottom);
  EXPECT_FALSE(IsTree(g));
}

}  // namespace
}  // namespace blowfish
