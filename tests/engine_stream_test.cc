// Result-streaming battery. The contract under test: a stream's
// chunks, concatenated, are bit-identical to the materialized Submit
// answer for the same engine state and seed (the chunks are pure
// post-processing of the same noisy releases); exactly one ε charge
// happens per stream, at admission; Cancel() frees the producer but
// keeps the charge; and the terminal status resolves exactly once —
// including under mid-stream cancellation, flow-control parking, and
// engine destruction with a live stream. Runs under TSan in CI with
// the other engine_* suites.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "engine/async_engine.h"
#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 7);
  return x;
}

/// Drains a stream; asserts chunks arrive in order with contiguous
/// offsets. Returns the concatenation; `terminal` receives the final
/// status (OK = kDone).
Vector Collect(ResultStream* stream, Status* terminal,
               size_t* num_chunks = nullptr) {
  Vector all;
  size_t chunks = 0;
  for (;;) {
    StreamChunk chunk;
    Result<StreamNext> next = stream->Next(&chunk);
    if (!next.ok()) {
      *terminal = next.status();
      break;
    }
    if (*next == StreamNext::kDone) {
      *terminal = Status::OK();
      break;
    }
    if (*next != StreamNext::kChunk) {
      ADD_FAILURE() << "blocking Next returned pending";
      *terminal = Status::Internal("pending from blocking Next");
      break;
    }
    EXPECT_EQ(chunk.offset, all.size()) << "chunks must be contiguous";
    EXPECT_FALSE(chunk.values.empty());
    all.insert(all.end(), chunk.values.begin(), chunk.values.end());
    ++chunks;
  }
  if (num_chunks != nullptr) *num_chunks = chunks;
  return all;
}

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "divergence at index " << i;
  }
}

RangeWorkload SomeRanges(size_t k, size_t count) {
  Rng rng(17);
  return RandomRanges(DomainShape({k, k}), count, &rng);
}

// ---------------------------------------------------------------------
// Determinism: chunk concatenation == Submit, per execution path.

TEST(StreamDeterminism, GridFastPathChunksMatchSubmit) {
  const size_t k = 16;
  const auto make_engine = [&] {
    auto engine = std::make_unique<QueryEngine>(EngineOptions{/*seed=*/41, false});
    engine
        ->RegisterPolicy("slab", GridPolicy(DomainShape({k, k}), 4),
                         Ramp(k * k), 100.0)
        .Check();
    engine->OpenSession("s", 100.0).Check();
    return engine;
  };
  QueryRequest request;
  request.session = "s";
  request.policy = "slab";
  request.ranges = SomeRanges(k, 37);  // 37 % 8 != 0: uneven tail chunk
  request.epsilon = 0.5;

  auto materialized = make_engine();
  const QueryResult full = materialized->Submit(request).ValueOrDie();
  ASSERT_TRUE(full.range_fast_path);

  auto streamed = make_engine();
  StreamOptions options;
  options.chunk_queries = 8;
  const std::shared_ptr<ResultStream> stream =
      streamed->SubmitStream(request, options).ValueOrDie();
  const StreamHeader header = stream->header().ValueOrDie();
  EXPECT_TRUE(header.range_fast_path);
  EXPECT_EQ(header.total_answers, 37u);
  EXPECT_EQ(header.plan_kind, full.plan_kind);

  Status terminal = Status::Internal("unset");
  size_t chunks = 0;
  const Vector concat = Collect(stream.get(), &terminal, &chunks);
  EXPECT_TRUE(terminal.ok());
  EXPECT_EQ(chunks, (37 + 7) / 8);
  ExpectBitIdentical(concat, full.answers);

  // Exactly one ε charge, at admission — both engines drained the same.
  EXPECT_EQ(*streamed->SessionRemaining("s"),
            *materialized->SessionRemaining("s"));
  EXPECT_NEAR(*streamed->SessionRemaining("s"), 99.5, 1e-12);
}

TEST(StreamDeterminism, DenseRowBlocksMatchSubmit) {
  const size_t domain = 48;
  const auto make_engine = [&] {
    auto engine = std::make_unique<QueryEngine>(EngineOptions{/*seed=*/42, false});
    engine->RegisterPolicy("line", LinePolicy(domain), Ramp(domain), 100.0)
        .Check();
    engine->OpenSession("s", 100.0).Check();
    return engine;
  };
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = CumulativeWorkload(domain);
  request.epsilon = 0.25;

  auto materialized = make_engine();
  const QueryResult full = materialized->Submit(request).ValueOrDie();

  auto streamed = make_engine();
  StreamOptions options;
  options.chunk_queries = 7;  // uneven tail again
  const std::shared_ptr<ResultStream> stream =
      streamed->SubmitStream(request, options).ValueOrDie();
  EXPECT_FALSE(stream->header().ValueOrDie().range_fast_path);

  Status terminal = Status::Internal("unset");
  const Vector concat = Collect(stream.get(), &terminal);
  EXPECT_TRUE(terminal.ok());
  ExpectBitIdentical(concat, full.answers);
}

TEST(StreamDeterminism, SummedAreaRangePathMatchesSubmit) {
  // Ranges against a non-grid policy answer from x̂ via the summed-area
  // table; the stream shares that table across chunks.
  const size_t domain = 64;
  const auto make_engine = [&] {
    auto engine = std::make_unique<QueryEngine>(EngineOptions{/*seed=*/43, false});
    engine->RegisterPolicy("line", LinePolicy(domain), Ramp(domain), 100.0)
        .Check();
    engine->OpenSession("s", 100.0).Check();
    return engine;
  };
  std::vector<RangeQuery> queries;
  for (size_t i = 0; i + 4 < domain; i += 3) queries.push_back({{i}, {i + 4}});
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.ranges = RangeWorkload("windows", DomainShape({domain}), queries);
  request.epsilon = 0.25;

  auto materialized = make_engine();
  const QueryResult full = materialized->Submit(request).ValueOrDie();
  ASSERT_FALSE(full.range_fast_path);

  auto streamed = make_engine();
  StreamOptions options;
  options.chunk_queries = 5;
  const std::shared_ptr<ResultStream> stream =
      streamed->SubmitStream(request, options).ValueOrDie();
  Status terminal = Status::Internal("unset");
  const Vector concat = Collect(stream.get(), &terminal);
  EXPECT_TRUE(terminal.ok());
  ExpectBitIdentical(concat, full.answers);
}

TEST(StreamDeterminism, AsyncSingleWorkerMatchesSequentialSubmit) {
  const size_t k = 16;
  QueryRequest request;
  request.session = "s";
  request.policy = "slab";
  request.ranges = SomeRanges(k, 25);
  request.epsilon = 0.5;

  QueryEngine reference(EngineOptions{/*seed=*/44, false});
  reference
      .RegisterPolicy("slab", GridPolicy(DomainShape({k, k}), 4), Ramp(k * k),
                      100.0)
      .Check();
  reference.OpenSession("s", 100.0).Check();
  const QueryResult full = reference.Submit(request).ValueOrDie();

  EngineOptions options;
  options.seed = 44;
  options.async_workers = 1;
  AsyncQueryEngine async(options);
  async.engine()
      .RegisterPolicy("slab", GridPolicy(DomainShape({k, k}), 4), Ramp(k * k),
                      100.0)
      .Check();
  async.engine().OpenSession("s", 100.0).Check();
  StreamOptions stream_options;
  stream_options.chunk_queries = 6;
  stream_options.max_buffered_chunks = 2;
  const std::shared_ptr<ResultStream> stream =
      async.SubmitStreamAsync(request, stream_options);
  EXPECT_TRUE(stream->header().ok());  // blocks until the worker admits
  Status terminal = Status::Internal("unset");
  const Vector concat = Collect(stream.get(), &terminal);
  EXPECT_TRUE(terminal.ok());
  ExpectBitIdentical(concat, full.answers);

  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.stream.accepted, 1u);
  EXPECT_EQ(stats.stream.completed, 1u);
  EXPECT_EQ(stats.stream.chunks_emitted, (25u + 5) / 6);
  // One ε charge, same as the sequential engine.
  EXPECT_EQ(*async.engine().SessionRemaining("s"),
            *reference.SessionRemaining("s"));
}

// ---------------------------------------------------------------------
// Lifecycle: cancellation, charges, terminal exactly-once.

TEST(StreamLifecycle, CancelKeepsChargeAndIsSticky) {
  QueryEngine engine(EngineOptions{/*seed=*/45, false});
  engine.RegisterPolicy("line", LinePolicy(32), Ramp(32), 10.0).Check();
  engine.OpenSession("s", 10.0).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(32);
  request.epsilon = 1.0;

  StreamOptions options;
  options.chunk_queries = 4;
  const std::shared_ptr<ResultStream> stream =
      engine.SubmitStream(request, options).ValueOrDie();
  // ε left the ledger at admission, before any chunk was read.
  EXPECT_NEAR(*engine.SessionRemaining("s"), 9.0, 1e-12);

  StreamChunk chunk;
  ASSERT_EQ(*stream->Next(&chunk), StreamNext::kChunk);
  stream->Cancel();
  EXPECT_TRUE(stream->finished());
  // Sticky terminal: every later Next reports the same cancellation.
  for (int i = 0; i < 3; ++i) {
    const Result<StreamNext> next = stream->Next(&chunk);
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
  }
  // The charge stands — privacy was spent when the noise was drawn.
  EXPECT_NEAR(*engine.SessionRemaining("s"), 9.0, 1e-12);
  // Cancel after the fact stays a no-op, and the engine still serves.
  stream->Cancel();
  EXPECT_TRUE(engine.Submit(request).ok());
}

TEST(StreamLifecycle, AdmissionFailureArrivesAsTerminalStatus) {
  QueryEngine engine(EngineOptions{/*seed=*/46, false});
  engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 0.5).Check();
  engine.OpenSession("s", 10.0).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(16);
  request.epsilon = 1.0;  // exceeds the policy cap
  // The sync API surfaces admission failures directly, like Submit.
  const auto refused = engine.SubmitStream(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOutOfRange);
  // Nothing was charged.
  EXPECT_NEAR(*engine.SessionRemaining("s"), 10.0, 1e-12);
  EXPECT_NEAR(*engine.PolicyRemaining("line"), 0.5, 1e-12);
}

TEST(StreamLifecycle, AsyncAdmissionFailureResolvesHeaderAndTerminal) {
  EngineOptions options;
  options.seed = 47;
  options.async_workers = 1;
  AsyncQueryEngine async(options);
  async.engine().RegisterPolicy("line", LinePolicy(16), Ramp(16), 0.5).Check();
  async.engine().OpenSession("s", 10.0).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(16);
  request.epsilon = 1.0;  // exceeds the policy cap
  const std::shared_ptr<ResultStream> stream =
      async.SubmitStreamAsync(request);
  const Result<StreamHeader> header = stream->header();
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
  StreamChunk chunk;
  const Result<StreamNext> next = stream->Next(&chunk);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(async.stats().stream.failed, 1u);
}

TEST(StreamLifecycle, CancelBeforeAdmissionAvoidsTheCharge) {
  EngineOptions options;
  options.seed = 48;
  options.async_workers = 1;
  AsyncQueryEngine async(options);
  async.engine().RegisterPolicy("line", LinePolicy(16), Ramp(16), 10.0).Check();
  async.engine().OpenSession("s", 10.0).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(16);
  request.epsilon = 1.0;

  async.Pause();  // hold the task in the queue
  const std::shared_ptr<ResultStream> stream = async.SubmitStreamAsync(request);
  stream->Cancel();
  // header() must resolve from the Cancel itself — no worker has (or
  // ever needs to have) touched the task; waiting here with the
  // pipeline still paused must not hang.
  const Result<StreamHeader> header = stream->header();
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCancelled);
  async.Resume();
  async.Drain();
  // Nothing was released, so nothing was paid for.
  EXPECT_NEAR(*async.engine().SessionRemaining("s"), 10.0, 1e-12);
}

TEST(StreamLifecycle, MidStreamCancelFreesTheProducerSlot) {
  EngineOptions options;
  options.seed = 49;
  options.async_workers = 1;  // a stuck producer would deadlock this
  AsyncQueryEngine async(options);
  async.engine().RegisterPolicy("line", LinePolicy(64), Ramp(64), 1e6).Check();
  async.engine().OpenSession("s", 1e6).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(64);
  request.epsilon = 0.1;

  StreamOptions stream_options;
  stream_options.chunk_queries = 1;
  stream_options.max_buffered_chunks = 1;  // parks after the first chunk
  const std::shared_ptr<ResultStream> stream =
      async.SubmitStreamAsync(request, stream_options);
  StreamChunk chunk;
  ASSERT_EQ(*stream->Next(&chunk), StreamNext::kChunk);
  stream->Cancel();
  // The sole worker must come back: a plain submit still completes.
  EXPECT_TRUE(async.SubmitAsync(request).get().ok());
  async.Drain();
  const AsyncStats stats = async.stats();
  EXPECT_EQ(stats.stream.cancelled, 1u);
  EXPECT_EQ(stats.stream.parked_now, 0u);
}

TEST(StreamLifecycle, DestructionWithLiveStreamResolvesCancelledExactlyOnce) {
  std::shared_ptr<ResultStream> stream;
  AsyncStats stats;
  {
    EngineOptions options;
    options.seed = 50;
    options.async_workers = 2;
    AsyncQueryEngine async(options);
    async.engine()
        .RegisterPolicy("line", LinePolicy(128), Ramp(128), 1e6)
        .Check();
    async.engine().OpenSession("s", 1e6).Check();
    QueryRequest request;
    request.session = "s";
    request.policy = "line";
    request.workload = IdentityWorkload(128);
    request.epsilon = 0.1;
    StreamOptions stream_options;
    stream_options.chunk_queries = 1;
    stream_options.max_buffered_chunks = 1;
    stream = async.SubmitStreamAsync(request, stream_options);
    // Let the producer reach the parked state (buffer full, worker
    // back in the pool), then tear the engine down around it.
    StreamChunk chunk;
    ASSERT_EQ(*stream->Next(&chunk), StreamNext::kChunk);
    stats = async.stats();
  }
  // The destructor's Shutdown(kCancelPending) swept the parked
  // producer; the consumer drains whatever was buffered (continuing
  // past the chunk already taken above), then observes kCancelled
  // forever after.
  EXPECT_EQ(stats.stream.accepted, 1u);
  Status terminal = Status::Internal("unset");
  size_t next_offset = 1;  // one single-query chunk consumed in scope
  for (;;) {
    StreamChunk drained;
    const Result<StreamNext> next = stream->Next(&drained);
    if (!next.ok()) {
      terminal = next.status();
      break;
    }
    ASSERT_NE(*next, StreamNext::kDone) << "cancelled stream ended kDone";
    EXPECT_EQ(drained.offset, next_offset);
    next_offset += drained.values.size();
  }
  EXPECT_EQ(terminal.code(), StatusCode::kCancelled);
  StreamChunk chunk;
  const Result<StreamNext> again = stream->Next(&chunk);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------
// Flow control and backpressure.

TEST(StreamFlowControl, SlowConsumerParksProducerAndLosesNothing) {
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(96);
  request.epsilon = 0.1;

  QueryEngine reference(EngineOptions{/*seed=*/51, false});
  reference.RegisterPolicy("line", LinePolicy(96), Ramp(96), 1e6).Check();
  reference.OpenSession("s", 1e6).Check();
  const QueryResult full = reference.Submit(request).ValueOrDie();

  EngineOptions options;
  options.seed = 51;
  options.async_workers = 1;
  AsyncQueryEngine async(options);
  async.engine().RegisterPolicy("line", LinePolicy(96), Ramp(96), 1e6).Check();
  async.engine().OpenSession("s", 1e6).Check();
  StreamOptions stream_options;
  stream_options.chunk_queries = 8;
  stream_options.max_buffered_chunks = 1;
  const std::shared_ptr<ResultStream> stream =
      async.SubmitStreamAsync(request, stream_options);
  // Consume deliberately slowly: every pop resumes the parked producer
  // through the space hook for exactly one more chunk.
  Vector concat;
  Status terminal = Status::Internal("unset");
  for (;;) {
    StreamChunk chunk;
    Result<StreamNext> next = stream->Next(&chunk);
    if (!next.ok() || *next == StreamNext::kDone) {
      terminal = next.ok() ? Status::OK() : next.status();
      break;
    }
    EXPECT_EQ(chunk.offset, concat.size());
    concat.insert(concat.end(), chunk.values.begin(), chunk.values.end());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(terminal.ok());
  ExpectBitIdentical(concat, full.answers);
  const AsyncStats stats = async.stats();
  EXPECT_GE(stats.stream.producer_parks, 1u);
  EXPECT_EQ(stats.stream.completed, 1u);
  EXPECT_EQ(stats.stream.chunks_emitted, 96u / 8);
  // Peak residency stayed at the bounded buffer, far under the full
  // 96-answer vector.
  EXPECT_LE(stream->peak_resident_bytes(),
            (stream_options.max_buffered_chunks + 1) *
                stream_options.chunk_queries * sizeof(double));
}

TEST(StreamFlowControl, QueueFullRejectionDeliversUnavailableTerminal) {
  EngineOptions options;
  options.seed = 52;
  options.async_workers = 1;
  options.async_queue_capacity = 1;
  AsyncQueryEngine async(options);
  async.engine().RegisterPolicy("line", LinePolicy(16), Ramp(16), 1e6).Check();
  async.engine().OpenSession("s", 1e6).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(16);
  request.epsilon = 0.1;

  async.Pause();
  std::future<Result<QueryResult>> held = async.SubmitAsync(request);
  const std::shared_ptr<ResultStream> refused =
      async.SubmitStreamAsync(request);
  const Result<StreamHeader> header = refused->header();
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(async.stats().stream.rejected, 1u);
  async.Resume();
  EXPECT_TRUE(held.get().ok());
}

TEST(StreamFlowControl, TryNextReportsPendingWhileProducerIsHeld) {
  EngineOptions options;
  options.seed = 53;
  options.async_workers = 1;
  AsyncQueryEngine async(options);
  async.engine().RegisterPolicy("line", LinePolicy(16), Ramp(16), 1e6).Check();
  async.engine().OpenSession("s", 1e6).Check();
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(16);
  request.epsilon = 0.1;

  async.Pause();
  const std::shared_ptr<ResultStream> stream = async.SubmitStreamAsync(request);
  StreamChunk chunk;
  EXPECT_EQ(*stream->TryNext(&chunk), StreamNext::kPending);
  async.Resume();
  Status terminal = Status::Internal("unset");
  Collect(stream.get(), &terminal);
  EXPECT_TRUE(terminal.ok());
}

}  // namespace
}  // namespace blowfish
