// Eigensolver, Cholesky, conjugate gradient, and pseudoinverse — the
// hand-rolled numerical kernels behind Theorem 4.1 (A+), the general
// P_G^{-1}, and the Appendix A SVD bound.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cg.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/pinv.h"
#include "rng/rng.h"

namespace blowfish {
namespace {

Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i; j < n; ++j) {
      m(i, j) = rng->Normal();
      m(j, i) = m(i, j);
    }
  return m;
}

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a(i, j) = rng->Normal();
  Matrix spd = a.GramColumns();
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(EigenSym, DiagonalMatrix) {
  const Matrix d = Matrix::Diagonal({3.0, 1.0, 2.0});
  const Vector values = SymmetricEigenvalues(d).ValueOrDie();
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 2.0, 1e-12);
  EXPECT_NEAR(values[2], 3.0, 1e-12);
}

TEST(EigenSym, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const Vector values = SymmetricEigenvalues(m).ValueOrDie();
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
}

TEST(EigenSym, ReconstructsMatrix) {
  Rng rng(4);
  const Matrix m = RandomSymmetric(12, &rng);
  const SymmetricEigenResult eig = SymmetricEigen(m).ValueOrDie();
  // V D V^T == M.
  const Matrix vd =
      eig.vectors.Multiply(Matrix::Diagonal(eig.values));
  const Matrix rebuilt = vd.Multiply(eig.vectors.Transpose());
  EXPECT_LT(rebuilt.MaxAbsDiff(m), 1e-9);
}

TEST(EigenSym, EigenvectorsOrthonormal) {
  Rng rng(5);
  const Matrix m = RandomSymmetric(10, &rng);
  const SymmetricEigenResult eig = SymmetricEigen(m).ValueOrDie();
  const Matrix vtv = eig.vectors.Transpose().Multiply(eig.vectors);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(10)), 1e-9);
}

TEST(EigenSym, TraceAndSumAgree) {
  Rng rng(6);
  const Matrix m = RandomSymmetric(15, &rng);
  const Vector values = SymmetricEigenvalues(m).ValueOrDie();
  double trace = 0.0, sum = 0.0;
  for (size_t i = 0; i < 15; ++i) trace += m(i, i);
  for (double v : values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(EigenSym, ConvergesOnClusteredSpectra) {
  // Regression: Grams of tree-aggregation matrices mix one huge
  // eigenvalue with a large cluster of exactly-equal small ones; the
  // QL convergence test must be judged against the global matrix
  // magnitude or iteration stalls (observed at n >= 350).
  const size_t n = 384;
  // T^T T for a binary interval tree: (i, j) entry = number of common
  // tree ancestors of leaves i and j (including leaves).
  Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      size_t lo_i = i, lo_j = j, width = 1;
      size_t common = 0;
      // Count levels where i and j fall in the same node.
      while (width <= n) {
        if (lo_i / width == lo_j / width) ++common;
        width *= 2;
      }
      gram(i, j) = static_cast<double>(common);
      gram(j, i) = gram(i, j);
    }
  }
  const Result<Vector> eig = SymmetricEigenvalues(gram);
  ASSERT_TRUE(eig.ok()) << eig.status().ToString();
  double sum = 0.0, trace = 0.0;
  for (double v : eig.ValueOrDie()) sum += v;
  for (size_t i = 0; i < n; ++i) trace += gram(i, i);
  EXPECT_NEAR(sum, trace, 1e-6 * trace);
}

TEST(EigenSym, RejectsNonSymmetric) {
  Matrix m{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_FALSE(SymmetricEigenvalues(m).ok());
}

TEST(SingularValues, MatchKnownMatrix) {
  // diag(3, 4) embedded in a wide matrix has singular values {4, 3}.
  Matrix a{{3.0, 0.0, 0.0}, {0.0, 4.0, 0.0}};
  const Vector sv = SingularValues(a).ValueOrDie();
  EXPECT_NEAR(sv[0], 4.0, 1e-10);
  EXPECT_NEAR(sv[1], 3.0, 1e-10);
}

TEST(SingularValues, InvariantUnderTranspose) {
  Rng rng(7);
  Matrix a(5, 9);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 9; ++j) a(i, j) = rng.Normal();
  const Vector s1 = SingularValues(a).ValueOrDie();
  const Vector s2 = SingularValues(a.Transpose()).ValueOrDie();
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(s1[i], s2[i], 1e-8);
}

TEST(Cholesky, SolveRecoversSolution) {
  Rng rng(8);
  const Matrix a = RandomSpd(9, &rng);
  Vector x_true(9);
  for (double& v : x_true) v = rng.Normal();
  const Vector b = a.MultiplyVector(x_true);
  const Cholesky chol = Cholesky::Factor(a).ValueOrDie();
  const Vector x = chol.Solve(b);
  for (size_t i = 0; i < 9; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, FactorSatisfiesLLT) {
  Rng rng(9);
  const Matrix a = RandomSpd(6, &rng);
  const Cholesky chol = Cholesky::Factor(a).ValueOrDie();
  const Matrix rebuilt = chol.lower().Multiply(chol.lower().Transpose());
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_FALSE(Cholesky::Factor(m).ok());
}

TEST(ConjugateGradient, MatchesCholesky) {
  Rng rng(10);
  const Matrix a = RandomSpd(20, &rng);
  Vector b(20);
  for (double& v : b) v = rng.Normal();
  const Vector x_chol = Cholesky::Factor(a).ValueOrDie().Solve(b);
  const CgResult cg =
      ConjugateGradient([&](const Vector& v) { return a.MultiplyVector(v); },
                        b)
          .ValueOrDie();
  for (size_t i = 0; i < 20; ++i) EXPECT_NEAR(cg.x[i], x_chol[i], 1e-6);
}

TEST(ConjugateGradient, ZeroRhsInstant) {
  const CgResult cg =
      ConjugateGradient([](const Vector& v) { return v; }, Vector(5, 0.0))
          .ValueOrDie();
  EXPECT_EQ(cg.iterations, 0u);
  EXPECT_EQ(cg.x, Vector(5, 0.0));
}

TEST(PseudoInverse, MoorePenroseConditions) {
  Rng rng(11);
  // Rank-deficient wide matrix: 4x6 with rank 3.
  Matrix base(3, 6);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 6; ++j) base(i, j) = rng.Normal();
  Matrix a(4, 6);
  for (size_t j = 0; j < 6; ++j) {
    a(0, j) = base(0, j);
    a(1, j) = base(1, j);
    a(2, j) = base(2, j);
    a(3, j) = base(0, j) + base(1, j);  // dependent row
  }
  const Matrix ap = PseudoInverse(a).ValueOrDie();
  const Matrix a_ap = a.Multiply(ap);
  const Matrix ap_a = ap.Multiply(a);
  // 1) A A+ A = A        2) A+ A A+ = A+
  EXPECT_LT(a_ap.Multiply(a).MaxAbsDiff(a), 1e-8);
  EXPECT_LT(ap_a.Multiply(ap).MaxAbsDiff(ap), 1e-8);
  // 3) (A A+)^T = A A+   4) (A+ A)^T = A+ A
  EXPECT_LT(a_ap.Transpose().MaxAbsDiff(a_ap), 1e-8);
  EXPECT_LT(ap_a.Transpose().MaxAbsDiff(ap_a), 1e-8);
}

TEST(PseudoInverse, InverseForSquareNonsingular) {
  Rng rng(12);
  const Matrix a = RandomSpd(5, &rng);
  const Matrix ap = PseudoInverse(a).ValueOrDie();
  EXPECT_LT(a.Multiply(ap).MaxAbsDiff(Matrix::Identity(5)), 1e-7);
}

TEST(RightInverse, SatisfiesARightInverse) {
  Rng rng(13);
  Matrix a(3, 7);  // full row rank w.h.p.
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 7; ++j) a(i, j) = rng.Normal();
  const Matrix r = RightInverse(a).ValueOrDie();
  EXPECT_LT(a.Multiply(r).MaxAbsDiff(Matrix::Identity(3)), 1e-9);
}

TEST(RightInverse, FailsForRankDeficient) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};  // rank 1
  EXPECT_FALSE(RightInverse(a).ok());
}

}  // namespace
}  // namespace blowfish
