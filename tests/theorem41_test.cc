// Theorem 4.1 — transformational equivalence for the matrix mechanism:
// with the same Laplace draws, answering W on x via strategy A under
// the Blowfish policy equals answering W_G on x_G via A_G = A P_G
// under plain DP, and the two error expressions coincide.

#include <gtest/gtest.h>

#include "core/pg_matrix.h"
#include "core/policy.h"
#include "core/sensitivity.h"
#include "core/transform.h"
#include "linalg/pinv.h"
#include "mech/matrix_mechanism.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

struct Theorem41Case {
  std::string label;
  Policy policy;
  size_t k;
};

class Theorem41Test : public ::testing::TestWithParam<Theorem41Case> {};

TEST_P(Theorem41Test, SameNoiseSameAnswersSameError) {
  const Policy& policy = GetParam().policy;
  const size_t k = GetParam().k;
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();

  // Workload: cumulative histogram; strategy: identity over the
  // *reduced* domain (a strategy in the original domain maps through
  // the same reduction).
  const Workload w = CumulativeWorkload(k);
  const SparseMatrix w_red_sparse =
      ReduceWorkloadMatrix(w.matrix(), t.reduction());
  const Matrix w_red = w_red_sparse.ToDense();
  const Matrix a = Matrix::Identity(w_red.cols());

  // Blowfish side: sensitivity of the strategy under the policy
  // (Definition 4.1), noise through W A+.
  const Matrix pg = t.pg().ToDense();
  const Matrix a_g = a.Multiply(pg);
  const Matrix wg = w_red.Multiply(pg);

  // Lemma 4.7 for the strategy: ∆_A(G) = ∆_{A_G}.
  const double delta_a_blowfish = a_g.MaxColumnL1();

  const MatrixMechanism blowfish_mm =
      MatrixMechanism::Create(w_red, a).ValueOrDie();
  const MatrixMechanism dp_mm = MatrixMechanism::Create(wg, a_g).ValueOrDie();

  // The DP-side sensitivity must equal the Blowfish-side policy
  // sensitivity by construction.
  EXPECT_NEAR(dp_mm.strategy_sensitivity(), delta_a_blowfish, 1e-12);

  // Same noise vector => identical answers (the proof of Theorem 4.1:
  // W_G A_G+ = W A+).
  Rng rng(31);
  Vector x(k);
  for (double& v : x) v = static_cast<double>(rng.UniformInt(0, 10));
  const Vector x_red = ReduceDatabase(x, t.reduction());
  const Vector xg = t.TransformDatabase(x);
  // True answers agree: W' x' = W_G x_G.
  {
    const Vector lhs = w_red.MultiplyVector(x_red);
    const Vector rhs = wg.MultiplyVector(xg);
    for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-6);
  }
  const Vector noise = rng.LaplaceVector(a.rows(), 1.0);
  // Scale both runs by the *same* sensitivity (the theorem's premise
  // ∆_A(G) = ∆_{A_G}); use the DP-side scale for both.
  const double eps = 1.3;
  Vector lhs = w_red.MultiplyVector(x_red);
  {
    const Matrix w_apinv = blowfish_mm.reconstruction();
    const Vector propagated = w_apinv.MultiplyVector(
        Scale(noise, dp_mm.strategy_sensitivity() / eps));
    lhs = Add(lhs, propagated);
  }
  const Vector rhs = dp_mm.RunWithNoise(xg, eps, noise);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-6) << GetParam().label << " q=" << i;
  }

  // Error expressions coincide.
  EXPECT_NEAR(dp_mm.ExpectedTotalSquaredError(eps),
              2.0 * std::pow(dp_mm.strategy_sensitivity() / eps, 2.0) *
                  std::pow(blowfish_mm.reconstruction().FrobeniusNorm(), 2.0),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, Theorem41Test,
    ::testing::Values(
        Theorem41Case{"line", LinePolicy(7), 7},
        Theorem41Case{"theta", Theta1DPolicy(8, 3), 8},
        Theorem41Case{"grid", GridPolicy(DomainShape({3, 3}), 1), 9},
        Theorem41Case{"cycle", Policy{"cyc", DomainShape({6}), CycleGraph(6)},
                      6},
        Theorem41Case{"bounded", BoundedDpPolicy(5), 5}),
    [](const auto& param_info) { return param_info.param.label; });

// Lemma 4.7 as a standalone property over several workloads/policies.
TEST(Lemma47, SensitivityEqualityAcrossWorkloads) {
  for (size_t k : {5u, 8u}) {
    for (const Policy& policy :
         {LinePolicy(k), Theta1DPolicy(k, 2), BoundedDpPolicy(k)}) {
      const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
      for (const Workload& w :
           {IdentityWorkload(k), CumulativeWorkload(k),
            AllRanges1D(k).ToWorkload()}) {
        const double direct = PolicySpecificSensitivity(w.matrix(), policy);
        const double via_transform = t.PolicySensitivity(w.matrix());
        EXPECT_NEAR(direct, via_transform, 1e-9)
            << policy.name << " / " << w.name();
      }
    }
  }
}

// Lemma 4.9 / Claim 4.2 brute force: on a tree policy, databases are
// Blowfish neighbors iff their transforms are at L1 distance 1.
TEST(Lemma49, TreeNeighborMappingBruteForce) {
  const size_t k = 6;
  const Policy policy = LinePolicy(k);
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  ASSERT_TRUE(t.is_tree());
  Vector base(k, 1.0);
  for (size_t u = 0; u < k; ++u) {
    for (size_t v = 0; v < k; ++v) {
      if (u == v) continue;
      Vector y = base, z = base;
      z[u] -= 1.0;
      z[v] += 1.0;
      const Vector yg = t.TransformDatabase(y);
      const Vector zg = t.TransformDatabase(z);
      const double l1 = NormL1(Sub(yg, zg));
      const bool neighbors = policy.graph.HasEdge(u, v);
      if (neighbors) {
        EXPECT_NEAR(l1, 1.0, 1e-9) << u << "->" << v;
      } else {
        EXPECT_GT(l1, 1.0 + 1e-9) << u << "->" << v;
      }
    }
  }
}

}  // namespace
}  // namespace blowfish
