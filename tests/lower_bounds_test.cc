// Corollary A.2 (SVD lower bound) and the L^{1/2} G L^{1/2} scaling
// trick, validated against direct singular-value computation.

#include <cmath>

#include <gtest/gtest.h>

#include "core/lower_bounds.h"
#include "core/pg_matrix.h"
#include "linalg/eigen_sym.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(LowerBounds, MultiplierFormula) {
  // P(ε, δ) = 2 log(2/δ) / ε².
  EXPECT_NEAR(SvdBoundMultiplier(1.0, 0.001), 2.0 * std::log(2000.0), 1e-9);
  EXPECT_NEAR(SvdBoundMultiplier(2.0, 0.001),
              0.5 * std::log(2000.0), 1e-9);
}

TEST(LowerBounds, Gram1DMatchesExplicitWorkload) {
  const size_t k = 7;
  const Matrix gram = RangeWorkloadGram1D(k);
  const Matrix w = AllRanges1D(k).ToWorkload().matrix().ToDense();
  EXPECT_LT(gram.MaxAbsDiff(w.GramColumns()), 1e-9);
}

TEST(LowerBounds, GramNdMatchesExplicitWorkload) {
  const DomainShape domain({3, 4});
  const Matrix gram = RangeWorkloadGramNd(domain);
  const Matrix w = AllRangesNd(domain).ToWorkload().matrix().ToDense();
  EXPECT_LT(gram.MaxAbsDiff(w.GramColumns()), 1e-9);
}

// The scaling trick must reproduce the singular values of the explicit
// transformed workload W' P_G.
TEST(LowerBounds, SingularSumMatchesExplicitTransform) {
  const size_t k = 8;
  const Policy policy = Theta1DPolicy(k, 2);
  const Matrix gram = RangeWorkloadGram1D(k);
  const SvdBound bound = SvdLowerBound(gram, policy, 1.0, 0.001).ValueOrDie();

  // Explicit route: reduce, multiply, SVD.
  const PolicyReduction red = ReducePolicyGraph(policy.graph);
  const SparseMatrix w = AllRanges1D(k).ToWorkload().matrix();
  const Matrix wg =
      ReduceWorkloadMatrix(w, red).Multiply(BuildPgMatrix(red.graph)).ToDense();
  const Vector sv = SingularValues(wg).ValueOrDie();
  double sum = 0.0;
  for (double s : sv) sum += s;
  EXPECT_NEAR(bound.singular_value_sum, sum, 1e-6 * sum);
  EXPECT_EQ(bound.num_edges, red.graph.num_edges());
}

TEST(LowerBounds, UnboundedPolicyEqualsPlainWorkloadSvd) {
  // Star-⊥ policy: P_G = I, so the bound uses the workload's own
  // singular values and n_G = k.
  const size_t k = 6;
  const Policy policy = UnboundedDpPolicy(k);
  const Matrix gram = RangeWorkloadGram1D(k);
  const SvdBound bound = SvdLowerBound(gram, policy, 1.0, 0.001).ValueOrDie();
  const Vector sv =
      SingularValues(AllRanges1D(k).ToWorkload().matrix().ToDense())
          .ValueOrDie();
  double sum = 0.0;
  for (double s : sv) sum += s;
  EXPECT_NEAR(bound.singular_value_sum, sum, 1e-6 * sum);
  EXPECT_EQ(bound.num_edges, k);
}

// Figure 10a's qualitative content: at fixed domain size, larger θ
// weakens the policy and its lower bound rises toward (and past)
// unbounded DP's.
TEST(LowerBounds, BoundIncreasesWithTheta) {
  const size_t k = 32;
  const Matrix gram = RangeWorkloadGram1D(k);
  double prev = 0.0;
  for (size_t theta : {1u, 2u, 4u, 8u}) {
    const SvdBound b =
        SvdLowerBound(gram, Theta1DPolicy(k, theta), 1.0, 0.001)
            .ValueOrDie();
    EXPECT_GT(b.bound, prev) << "theta=" << theta;
    prev = b.bound;
  }
}

// Figure 10a's headline: "minimum error under unbounded differential
// privacy increases faster than the minimum error under Gθ_k" — the
// line-policy bound is below the DP bound and the gap widens with k.
TEST(LowerBounds, LinePolicyGapWidensWithDomainSize) {
  Vector ratios;
  for (size_t k : {16u, 64u}) {
    const Matrix gram = RangeWorkloadGram1D(k);
    const double line =
        SvdLowerBound(gram, LinePolicy(k), 1.0, 0.001).ValueOrDie().bound;
    const double dp = SvdLowerBound(gram, UnboundedDpPolicy(k), 1.0, 0.001)
                          .ValueOrDie()
                          .bound;
    EXPECT_LT(line, dp) << "k=" << k;
    ratios.push_back(line / dp);
  }
  EXPECT_LT(ratios[1], ratios[0]);  // DP bound grows faster
}

TEST(LowerBounds, TwoDimensionalGridPolicies) {
  const DomainShape domain({5, 5});
  const Matrix gram = RangeWorkloadGramNd(domain);
  const double g1 =
      SvdLowerBound(gram, GridPolicy(domain, 1), 1.0, 0.001).ValueOrDie().bound;
  const double g2 =
      SvdLowerBound(gram, GridPolicy(domain, 2), 1.0, 0.001).ValueOrDie().bound;
  const double bounded =
      SvdLowerBound(gram, BoundedDpPolicy(domain.size()), 1.0, 0.001)
          .ValueOrDie()
          .bound;
  EXPECT_LT(g1, g2);
  // Figure 10b: all θ values beat bounded differential privacy.
  EXPECT_LT(g2, bounded);
}

TEST(LowerBounds, ScalesWithEpsilonAndDelta) {
  // P(ε, δ) scaling: 1/ε² in ε, log(2/δ) in δ — the (ε, δ) regime of
  // Corollary A.2.
  const size_t k = 16;
  const Matrix gram = RangeWorkloadGram1D(k);
  const Policy policy = LinePolicy(k);
  const double b1 = SvdLowerBound(gram, policy, 1.0, 0.001).ValueOrDie().bound;
  const double b2 = SvdLowerBound(gram, policy, 2.0, 0.001).ValueOrDie().bound;
  EXPECT_NEAR(b1 / b2, 4.0, 1e-9);
  const double bd = SvdLowerBound(gram, policy, 1.0, 0.1).ValueOrDie().bound;
  EXPECT_NEAR(b1 / bd, std::log(2000.0) / std::log(20.0), 1e-9);
}

TEST(LowerBounds, RejectsMismatchedGram) {
  EXPECT_FALSE(
      SvdLowerBound(Matrix::Identity(3), LinePolicy(4), 1.0, 0.001).ok());
}

}  // namespace
}  // namespace blowfish
