#include <gtest/gtest.h>

#include "workload/builders.h"
#include "workload/workload.h"

namespace blowfish {
namespace {

TEST(Workload, IdentitySensitivityIsOne) {
  // Example 2.2: ∆ I_k = 1.
  const Workload w = IdentityWorkload(6);
  EXPECT_DOUBLE_EQ(w.SensitivityUnbounded(), 1.0);
  EXPECT_EQ(w.Answer({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}),
            (Vector{1.0, 2.0, 3.0, 4.0, 5.0, 6.0}));
}

TEST(Workload, CumulativeSensitivityIsK) {
  // Example 2.2: ∆ C_k = k.
  const Workload w = CumulativeWorkload(5);
  EXPECT_DOUBLE_EQ(w.SensitivityUnbounded(), 5.0);
  EXPECT_EQ(w.Answer({1.0, 1.0, 1.0, 1.0, 1.0}),
            (Vector{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(RangeWorkload, AllRanges1DCountsAndAnswers) {
  const RangeWorkload w = AllRanges1D(4);
  EXPECT_EQ(w.num_queries(), 10u);  // k(k+1)/2
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector ans = w.Answer(x);
  // Find q(1, 2) (0-based) = 5.
  bool found = false;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    if (w.queries()[i].lo[0] == 1 && w.queries()[i].hi[0] == 2) {
      EXPECT_DOUBLE_EQ(ans[i], 5.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RangeWorkload, AnswerMatchesExplicitMatrix1D) {
  const RangeWorkload w = AllRanges1D(6);
  const Workload explicit_w = w.ToWorkload();
  Vector x{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const Vector fast = w.Answer(x);
  const Vector slow = explicit_w.Answer(x);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], slow[i], 1e-9);
}

TEST(RangeWorkload, AnswerMatchesExplicitMatrix2D) {
  Rng rng(31);
  const DomainShape domain({5, 7});
  const RangeWorkload w = RandomRanges(domain, 50, &rng);
  Vector x(domain.size());
  for (double& v : x) v = rng.UniformInt(0, 9);
  const Vector fast = w.Answer(x);
  const Vector slow = w.ToWorkload().Answer(x);
  for (size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], slow[i], 1e-9);
}

TEST(RangeWorkload, AnswerMatchesExplicitMatrix3D) {
  Rng rng(32);
  const DomainShape domain({3, 4, 3});
  const RangeWorkload w = RandomRanges(domain, 40, &rng);
  Vector x(domain.size());
  for (double& v : x) v = rng.UniformInt(0, 5);
  const Vector fast = w.Answer(x);
  const Vector slow = w.ToWorkload().Answer(x);
  for (size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], slow[i], 1e-9);
}

TEST(RangeWorkload, AllRangesNdCount) {
  const DomainShape domain({3, 3});
  const RangeWorkload w = AllRangesNd(domain);
  EXPECT_EQ(w.num_queries(), 36u);  // (3*4/2)^2
}

TEST(RangeWorkload, RandomRangesInBounds) {
  Rng rng(33);
  const DomainShape domain({10, 20});
  const RangeWorkload w = RandomRanges(domain, 200, &rng);
  EXPECT_EQ(w.num_queries(), 200u);
  for (const RangeQuery& q : w.queries()) {
    EXPECT_LE(q.lo[0], q.hi[0]);
    EXPECT_LE(q.lo[1], q.hi[1]);
    EXPECT_LT(q.hi[0], 10u);
    EXPECT_LT(q.hi[1], 20u);
  }
}

TEST(RangeWorkload, HistogramRangesIsIdentity) {
  const DomainShape domain({4, 2});
  const RangeWorkload w = HistogramRanges(domain);
  EXPECT_EQ(w.num_queries(), 8u);
  Vector x{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(w.Answer(x), x);
}

TEST(RangeWorkload, FullDomainRangeEqualsTotal) {
  const DomainShape domain({6});
  const RangeWorkload w("total", domain, {RangeQuery{{0}, {5}}});
  EXPECT_DOUBLE_EQ(w.Answer({1, 1, 1, 1, 1, 1})[0], 6.0);
}

TEST(RangeWorkloadDeath, RejectsInvertedBounds) {
  const DomainShape domain({5});
  EXPECT_DEATH(RangeWorkload("bad", domain, {RangeQuery{{3}, {1}}}),
               "CHECK failed");
  EXPECT_DEATH(RangeWorkload("oob", domain, {RangeQuery{{0}, {5}}}),
               "CHECK failed");
}

}  // namespace
}  // namespace blowfish
