#include "rng/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace blowfish {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, LaplaceMomentsMatchTheory) {
  // Laplace(b) has mean 0 and variance 2 b^2 (Theorem 2.1's noise).
  Rng rng(123);
  const double scale = 2.5;
  const size_t n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.Laplace(scale);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 2.0 * scale * scale, 0.4);
}

TEST(Rng, LaplaceVectorSize) {
  Rng rng(5);
  EXPECT_EQ(rng.LaplaceVector(17, 1.0).size(), 17u);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(99);
  std::vector<double> weights{0.0, 3.0, 1.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[0], 0u);
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[2]);
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent's next draws.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Uniform() != child.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngDeath, NonPositiveScaleRejected) {
  Rng rng(1);
  EXPECT_DEATH(rng.Laplace(0.0), "CHECK failed");
  EXPECT_DEATH(rng.Exponential(-1.0), "CHECK failed");
}

}  // namespace
}  // namespace blowfish
