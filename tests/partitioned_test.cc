#include <gtest/gtest.h>

#include "mech/laplace.h"
#include "mech/partitioned.h"
#include "mech/privelet.h"

namespace blowfish {
namespace {

HistogramMechanismPtr LaplaceFactory(size_t) {
  return std::make_shared<LaplaceMechanism>();
}

TEST(Partitioned, CoversDomainAndPreservesShape) {
  PartitionedMechanism mech({3, 7, 10}, LaplaceFactory);
  Vector x(10, 5.0);
  Rng rng(1);
  const Vector est = mech.Run(x, 1e9, &rng);
  ASSERT_EQ(est.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(est[i], 5.0, 1e-5);
}

TEST(Partitioned, GroupsAreIndependentInstances) {
  // A Privelet group of size 4 pads to 4; groups of distinct sizes get
  // distinct instances and distinct sensitivities.
  PartitionedMechanism mech(
      {4, 12},
      [](size_t size) -> HistogramMechanismPtr {
        return std::make_shared<PriveletMechanism>(DomainShape({size}));
      },
      "PerGroupPrivelet");
  EXPECT_EQ(mech.name(), "PerGroupPrivelet");
  Vector x(12);
  for (size_t i = 0; i < 12; ++i) x[i] = static_cast<double>(i);
  Rng rng(2);
  const Vector est = mech.Run(x, 1e9, &rng);
  for (size_t i = 0; i < 12; ++i) EXPECT_NEAR(est[i], x[i], 1e-4);
}

TEST(Partitioned, ScatteredGroupsRoundTrip) {
  const std::vector<std::vector<size_t>> groups{{0, 2, 4}, {1, 3}};
  Vector x{10.0, 20.0, 30.0, 40.0, 50.0};
  Rng rng(3);
  const Vector est = PartitionedMechanism::RunScattered(
      groups, LaplaceFactory, x, 1e9, &rng);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(est[i], x[i], 1e-5);
}

TEST(PartitionedDeath, RejectsIncompleteCover) {
  PartitionedMechanism mech({3}, LaplaceFactory);
  Vector x(10, 1.0);
  Rng rng(4);
  EXPECT_DEATH(mech.Run(x, 1.0, &rng), "CHECK failed");
  EXPECT_DEATH(PartitionedMechanism::RunScattered({{0, 1}}, LaplaceFactory,
                                                  x, 1.0, &rng),
               "cover");
}

TEST(PartitionedDeath, RejectsOverlappingScatteredGroups) {
  Vector x(3, 1.0);
  Rng rng(5);
  EXPECT_DEATH(PartitionedMechanism::RunScattered(
                   {{0, 1}, {1, 2}}, LaplaceFactory, x, 1.0, &rng),
               "disjoint");
}

}  // namespace
}  // namespace blowfish
