// dp_lint fixture: must stay QUIET on rng-discipline.
// All randomness flows through blowfish::Rng; mentions of "rand" inside
// identifiers, comments, and strings must not trip the rule.
#include "rng/rng.h"

namespace blowfish {

// A brand-new operand strand: none of these words are rand() calls.
double SanctionedNoise(Rng* rng) {
  const char* operand = "rand() in a string literal is not a call";
  double grand_total = rng->Laplace(1.0);
  (void)operand;
  return grand_total + rng->Uniform();
}

}  // namespace blowfish
