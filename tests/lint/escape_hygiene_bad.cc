// dp_lint fixture: MUST fire escape-hygiene.
// An allow() escape with no reason after the ')': the escape hatch is
// only valid when it documents why the exception is sound.
#include <cstdlib>

namespace blowfish {

double BareEscape() {
  // dp-lint: allow(rng-discipline)
  return static_cast<double>(rand());
}

}  // namespace blowfish
