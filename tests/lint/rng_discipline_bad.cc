// dp_lint fixture: MUST fire rng-discipline.
// Unsanctioned randomness outside src/rng/: libc rand(), a <random>
// engine, and std::random_device all bypass blowfish::Rng.
#include <cstdlib>
#include <random>

namespace blowfish {

double UnsanctionedNoise() {
  std::random_device device;
  std::mt19937 engine(device());
  return static_cast<double>(engine()) + static_cast<double>(rand());
}

}  // namespace blowfish
