// dp_lint fixture: must stay QUIET — the src/rng/ sanctuary may use
// <random> primitives (this is where Rng::EntropySeed lives).
// dp-lint: treat-as src/rng/entropy.cc
#include <cstdint>
#include <random>

namespace blowfish {

uint64_t SanctuaryEntropy() {
  std::random_device device;
  return (static_cast<uint64_t>(device()) << 32) ^ device();
}

}  // namespace blowfish
