// dp_lint fixture: MUST fire epsilon-confinement.
// Hand-rolled budget bookkeeping outside PrivacyBudget/BudgetAccountant:
// mutating an epsilon field directly skips CanSpend's slack-aware check
// and the audit log.
namespace blowfish {

struct ShadowLedger {
  double eps_spent = 0.0;
  double epsilon_total = 1.0;
};

bool ShadowCharge(ShadowLedger* ledger, double epsilon) {
  ledger->eps_spent += epsilon;
  return ledger->eps_spent <= ledger->epsilon_total;
}

}  // namespace blowfish
