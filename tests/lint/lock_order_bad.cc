// dp_lint fixture: MUST fire lock-order.
// Shard 3 locked before shard 1: a concurrent charge locking ascending
// order deadlocks against this, and the audit-log append order is no
// longer the ledger spend order.
#include <mutex>

namespace blowfish {

struct Shard {
  std::mutex mu;
};

class ShardedThing {
 public:
  void DescendingLocks();

 private:
  Shard shards_[4];
};

void ShardedThing::DescendingLocks() {
  std::unique_lock<std::mutex> first(shards_[3].mu);
  std::unique_lock<std::mutex> second(shards_[1].mu);
}

}  // namespace blowfish
