// dp_lint fixture: MUST fire journal-before-admit (and nothing else).
// A spend commit with no write-ahead journal append anywhere in the
// function — exactly the fail-open shape the rule exists to catch.
// dp-lint: treat-as src/engine/bad_commit.cc

#include <cstddef>

namespace blowfish {

struct PrivacyBudget {
  int SpendTagged(double epsilon, const char* workload, const void* context,
                  unsigned parallel_count);
};

struct Slot {
  PrivacyBudget* budget;
};

int CommitWithoutJournal(Slot* slot, double epsilon) {
  // BAD: the charge commits with no durable spend record written first.
  return slot->budget->SpendTagged(epsilon, "q42", nullptr, 1);
}

}  // namespace blowfish
