// dp_lint fixture: must stay QUIET on no-raw-data-logging.
// Metadata is fine: sizes, epsilon totals, and ledger balances are
// post-DP accounting, not data.
#include <string>

#include "common/logging.h"
#include "common/status.h"

namespace blowfish {

Status MetadataOnly(size_t rows, double epsilon, double remaining) {
  BF_LOG(kInfo) << "released " << rows << " rows at epsilon " << epsilon;
  if (remaining < 0.0) {
    return Status::OutOfRange("budget exhausted: remaining " +
                              std::to_string(remaining));
  }
  return Status::OK();
}

}  // namespace blowfish
