// dp_lint fixture: MUST fire no-raw-data-logging.
// Dataset counts and x-hat values flowing into a log line and a Status
// message: both surfaces leave the privacy boundary unnoised.
#include <string>

#include "common/logging.h"
#include "common/status.h"

namespace blowfish {

struct Dataset {
  double* counts;
};

Status LeakyValidate(const Dataset& dataset, const double* xhat) {
  BF_LOG(kInfo) << "first cell is " << dataset.counts[0];
  if (xhat[0] < 0.0) {
    return Status::Internal("negative x-hat: " + std::to_string(xhat[0]));
  }
  return Status::OK();
}

}  // namespace blowfish
