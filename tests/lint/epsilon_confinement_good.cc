// dp_lint fixture: must stay QUIET on epsilon-confinement.
// Passing an epsilon through to the budget classes, comparing it, and
// mechanism noise-scale math on a bare epsilon parameter are all fine —
// the rule targets arithmetic on epsilon/budget *fields*.
namespace blowfish {

struct Request {
  double epsilon = 0.0;
};

class Accountant {
 public:
  bool Charge(double epsilon);
};

bool Admit(Accountant* accountant, const Request& request) {
  if (request.epsilon <= 0.0) return false;
  return accountant->Charge(request.epsilon);
}

double NoiseScale(double sensitivity, double epsilon) {
  return sensitivity / epsilon;
}

}  // namespace blowfish
