// dp_lint fixture: MUST fire charge-before-noise.
// An engine-path release that draws its noise before the ledger charge
// lands: if the charge is then refused, the noisy answer was already
// computed from an unpaid release.
// dp-lint: treat-as src/engine/bad_release.cc
#include "rng/rng.h"

namespace blowfish {

class Accountant {
 public:
  bool Charge(double epsilon);
};

double ReleaseBeforeCharge(Accountant* accountant, double epsilon,
                           uint64_t seed) {
  Rng rng(seed);
  const double noisy = rng.Laplace(1.0 / epsilon);
  if (!accountant->Charge(epsilon)) return 0.0;
  return noisy;
}

}  // namespace blowfish
