// dp_lint fixture: must stay QUIET (on every rule).
// A well-formed escape: allow(rule) with a reason silences that rule on
// the next line and raises no escape-hygiene complaint.
#include <cstdlib>

namespace blowfish {

double ReasonedEscape() {
  // dp-lint: allow(rng-discipline) fixture exercising the escape hatch
  return static_cast<double>(rand());
}

}  // namespace blowfish
