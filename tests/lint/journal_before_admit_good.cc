// dp_lint fixture: must NOT fire journal-before-admit.
// The write-ahead append precedes the spend commit, and a helper that
// only journals (no commit) is also clean.
// dp-lint: treat-as src/engine/good_commit.cc

#include <cstddef>

namespace blowfish {

struct PrivacyBudget {
  bool CanSpend(double epsilon);  // probe, not a commit
  int SpendTagged(double epsilon, const char* workload, const void* context,
                  unsigned parallel_count);
};

struct Slot {
  PrivacyBudget* budget;
};

struct LedgerJournal {
  int AppendCharge(bool charged, int refusal, double epsilon,
                   unsigned parallel_count);
};

int AppendJournalCharge(LedgerJournal* journal, double epsilon) {
  // Journal-only helper: no spend commit here, nothing to order.
  return journal->AppendCharge(true, 0, epsilon, 1);
}

int CommitWithJournal(LedgerJournal* journal, Slot* slot, double epsilon) {
  if (!slot->budget->CanSpend(epsilon)) {
    return 1;
  }
  // GOOD: durable record first, commit second.
  int journaled = AppendJournalCharge(journal, epsilon);
  if (journaled != 0) {
    return journaled;
  }
  return slot->budget->SpendTagged(epsilon, "q42", nullptr, 1);
}

}  // namespace blowfish
