// dp_lint fixture: must stay QUIET on charge-before-noise.
// The sanctioned admission order: the charge lands first, the Rng is
// constructed and drawn from only after it succeeds.
// dp-lint: treat-as src/engine/good_release.cc
#include "rng/rng.h"

namespace blowfish {

class Accountant {
 public:
  bool Charge(double epsilon);
};

double ChargeThenRelease(Accountant* accountant, double epsilon,
                         uint64_t seed) {
  if (!accountant->Charge(epsilon)) return 0.0;
  Rng rng(seed);
  return rng.Laplace(1.0 / epsilon);
}

}  // namespace blowfish
