// dp_lint fixture: must stay QUIET on lock-order.
// The sanctioned pattern (mirrors BudgetAccountant::Charge): ascending
// index loop over the involved shards.
#include <mutex>

namespace blowfish {

constexpr size_t kShardCount = 4;

struct Shard {
  std::mutex mu;
};

class ShardedThing {
 public:
  void AscendingLocks(const bool involved[kShardCount]) {
    std::unique_lock<std::mutex> locks[kShardCount];
    for (size_t s = 0; s < kShardCount; ++s) {
      if (involved[s]) locks[s] = std::unique_lock<std::mutex>(shards_[s].mu);
    }
  }

 private:
  Shard shards_[kShardCount];
};

}  // namespace blowfish
