#include <gtest/gtest.h>

#include "core/mechanisms_2d.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(Marginal, OneDimMarginalOf2DGrid) {
  const DomainShape domain({3, 4});
  const RangeWorkload w = MarginalWorkload(domain, {0});
  EXPECT_EQ(w.num_queries(), 3u);  // one per row
  Vector x(12);
  for (size_t i = 0; i < 12; ++i) x[i] = static_cast<double>(i);
  const Vector ans = w.Answer(x);
  EXPECT_DOUBLE_EQ(ans[0], 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(ans[1], 4 + 5 + 6 + 7);
  EXPECT_DOUBLE_EQ(ans[2], 8 + 9 + 10 + 11);
}

TEST(Marginal, TwoDimMarginalIsHistogram) {
  const DomainShape domain({2, 3});
  const RangeWorkload w = MarginalWorkload(domain, {0, 1});
  EXPECT_EQ(w.num_queries(), 6u);
  Vector x{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(w.Answer(x), x);
}

TEST(Marginal, EmptyMarginalIsTotal) {
  const DomainShape domain({4, 4});
  const RangeWorkload w = MarginalWorkload(domain, {});
  ASSERT_EQ(w.num_queries(), 1u);
  Vector x(16, 2.0);
  EXPECT_DOUBLE_EQ(w.Answer(x)[0], 32.0);
}

TEST(Marginal, ThreeDimensionalMiddleMarginal) {
  const DomainShape domain({2, 3, 2});
  const RangeWorkload w = MarginalWorkload(domain, {1});
  EXPECT_EQ(w.num_queries(), 3u);
  Vector x(12, 1.0);
  for (double v : w.Answer(x)) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(Marginal, MatchesExplicitMatrix) {
  const DomainShape domain({3, 3});
  const RangeWorkload w = MarginalWorkload(domain, {1});
  Rng rng(1);
  Vector x(9);
  for (double& v : x) v = rng.Uniform(0, 10);
  const Vector fast = w.Answer(x);
  const Vector slow = w.ToWorkload().Answer(x);
  for (size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], slow[i], 1e-9);
}

TEST(Marginal, AnsweredFromGridBlowfishRelease) {
  // Marginals are linear queries: answering them from the grid
  // mechanism's histogram release is post-processing with no further
  // budget.
  const DomainShape domain({6, 6});
  auto mech =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  Vector x(36, 3.0);
  Rng rng(2);
  const Vector release = mech->Run(x, 1e9, &rng);
  const RangeWorkload rows = MarginalWorkload(domain, {0});
  const Vector ans = rows.Answer(release);
  for (double v : ans) EXPECT_NEAR(v, 18.0, 1e-4);
}

}  // namespace
}  // namespace blowfish
