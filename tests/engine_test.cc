// The serving layer: registry lifecycle, plan-cache behaviour, and
// budget enforcement through the QueryEngine facade.

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 7);
  return x;
}

TEST(PolicyRegistry, MetadataPrecomputedAtRegistration) {
  PolicyRegistry registry;
  ASSERT_TRUE(
      registry.Register("line", LinePolicy(16), Ramp(16), 1.0).ok());
  ASSERT_TRUE(registry
                  .Register("grid", GridPolicy(DomainShape({4, 4}), 1),
                            Ramp(16), 1.0)
                  .ok());

  const auto line = registry.Get("line").ValueOrDie();
  EXPECT_EQ(line->metadata.domain_size, 16u);
  EXPECT_EQ(line->metadata.num_edges, 15u);
  EXPECT_TRUE(line->metadata.is_tree);
  EXPECT_EQ(line->metadata.num_components, 1u);
  EXPECT_FALSE(line->metadata.has_bottom);

  const auto grid = registry.Get("grid").ValueOrDie();
  EXPECT_EQ(grid->metadata.num_dims, 2u);
  EXPECT_FALSE(grid->metadata.is_tree);
  EXPECT_EQ(grid->metadata.num_components, 1u);
  EXPECT_EQ(grid->metadata.max_degree, 4u);
}

TEST(PolicyRegistry, LifecycleAndValidation) {
  PolicyRegistry registry;
  ASSERT_TRUE(
      registry.Register("p", LinePolicy(8), Ramp(8), 2.0).ok());
  // Duplicate name.
  EXPECT_EQ(registry.Register("p", LinePolicy(8), Ramp(8), 2.0).code(),
            StatusCode::kAlreadyExists);
  // Data / domain mismatch and bad cap.
  EXPECT_EQ(registry.Register("q", LinePolicy(8), Ramp(9), 2.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("q", LinePolicy(8), Ramp(8), 0.0).code(),
            StatusCode::kInvalidArgument);
  // The plan-cache key separator is reserved.
  EXPECT_EQ(
      registry.Register(std::string("a\x1f") + "b", LinePolicy(8), Ramp(8), 1.0)
          .code(),
      StatusCode::kInvalidArgument);

  // Replace installs a strictly newer version; old snapshots stay
  // valid. Versions are never reused, even across failed attempts.
  const auto before = registry.Get("p").ValueOrDie();
  ASSERT_TRUE(registry.Replace("p", LinePolicy(8), Ramp(8), 3.0).ok());
  const auto after = registry.Get("p").ValueOrDie();
  EXPECT_GT(after->version, before->version);
  EXPECT_EQ(before->epsilon_cap, 2.0);
  EXPECT_EQ(after->epsilon_cap, 3.0);

  ASSERT_TRUE(registry.Unregister("p").ok());
  EXPECT_EQ(registry.Get("p").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Unregister("p").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(BudgetAccountant, AtomicMultiLedgerCharge) {
  BudgetAccountant accountant;
  ASSERT_TRUE(accountant.OpenLedger("a", 1.0).ok());
  ASSERT_TRUE(accountant.OpenLedger("b", 0.5).ok());

  ASSERT_TRUE(accountant.Charge({"a", "b"}, 0.4, "joint").ok());
  EXPECT_NEAR(*accountant.Remaining("a"), 0.6, 1e-12);
  EXPECT_NEAR(*accountant.Remaining("b"), 0.1, 1e-12);

  // 'a' could afford 0.2 but 'b' cannot: neither ledger may move.
  const Status refused = accountant.Charge({"a", "b"}, 0.2, "joint");
  EXPECT_EQ(refused.code(), StatusCode::kOutOfRange);
  EXPECT_NEAR(*accountant.Remaining("a"), 0.6, 1e-12);
  EXPECT_NEAR(*accountant.Remaining("b"), 0.1, 1e-12);

  // Unknown ledger refuses without side effects too.
  EXPECT_EQ(accountant.Charge({"a", "ghost"}, 0.1, "x").code(),
            StatusCode::kNotFound);
  EXPECT_NEAR(*accountant.Remaining("a"), 0.6, 1e-12);

  // A repeated id composes sequentially within one charge.
  EXPECT_EQ(accountant.Charge({"a", "a"}, 0.4, "double").code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(accountant.Charge({"a", "a"}, 0.3, "double").ok());
  EXPECT_NEAR(*accountant.Remaining("a"), 0.0, 1e-9);
}

TEST(PlanCacheStats, ClearResetsCountersWithEntries) {
  PlanCache cache;
  auto factory = [] {
    Plan plan;
    plan.kind = "test";
    return Result<Plan>(std::move(plan));
  };
  bool hit = false;
  ASSERT_TRUE(cache.GetOrCompute("k", factory, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrCompute("k", factory, &hit).ok());
  EXPECT_TRUE(hit);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // Clear drops the counters with the entries: stats must never
  // report hit rates against plans that no longer exist.
  cache.Clear();
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);

  ASSERT_TRUE(cache.GetOrCompute("k", factory, &hit).ok());
  EXPECT_FALSE(hit);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

class QueryEngineTest : public ::testing::Test {
 protected:
  // Three distinct policy families: line (tree transform), θ=1 grid
  // (per-line Privelet matrix mechanism), unbounded DP (star to ⊥).
  void SetUp() override {
    ASSERT_TRUE(
        engine_.RegisterPolicy("salaries", LinePolicy(16), Ramp(16), 100.0)
            .ok());
    ASSERT_TRUE(engine_
                    .RegisterPolicy("locations",
                                    GridPolicy(DomainShape({4, 4}), 1),
                                    Ramp(16), 100.0)
                    .ok());
    ASSERT_TRUE(engine_
                    .RegisterPolicy("classic-dp", UnboundedDpPolicy(16),
                                    Ramp(16), 100.0)
                    .ok());
  }

  QueryRequest Request(const std::string& session,
                       const std::string& policy, double epsilon) const {
    QueryRequest request;
    request.session = session;
    request.policy = policy;
    request.workload = IdentityWorkload(16);
    request.epsilon = epsilon;
    return request;
  }

  QueryEngine engine_;
};

TEST_F(QueryEngineTest, SubmitEndToEndAcrossPolicyFamilies) {
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());

  const QueryResult salaries =
      engine_.Submit(Request("alice", "salaries", 1.0)).ValueOrDie();
  EXPECT_EQ(salaries.answers.size(), 16u);
  EXPECT_EQ(salaries.plan_kind, "tree-transform");
  EXPECT_NEAR(salaries.session_remaining.value(), 9.0, 1e-9);
  EXPECT_NE(salaries.guarantee.neighbor_model.find("Blowfish"),
            std::string::npos);

  const QueryResult locations =
      engine_.Submit(Request("alice", "locations", 1.0)).ValueOrDie();
  EXPECT_EQ(locations.plan_kind, "grid-matrix");

  const QueryResult classic =
      engine_.Submit(Request("alice", "classic-dp", 1.0)).ValueOrDie();
  EXPECT_EQ(classic.plan_kind, "tree-transform");
  EXPECT_NEAR(classic.session_remaining.value(), 7.0, 1e-9);
}

TEST_F(QueryEngineTest, PlanCacheHitsOnRepeatsAndSharesAcrossSessions) {
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  ASSERT_TRUE(engine_.OpenSession("bob", 10.0).ok());

  const QueryResult first =
      engine_.Submit(Request("alice", "salaries", 0.5)).ValueOrDie();
  EXPECT_FALSE(first.plan_cache_hit);
  const QueryResult second =
      engine_.Submit(Request("alice", "salaries", 0.5)).ValueOrDie();
  EXPECT_TRUE(second.plan_cache_hit);
  // Plans are keyed by policy, not session.
  const QueryResult cross =
      engine_.Submit(Request("bob", "salaries", 0.5)).ValueOrDie();
  EXPECT_TRUE(cross.plan_cache_hit);

  // Planner options are part of the key.
  QueryRequest dd = Request("bob", "salaries", 0.5);
  dd.prefer_data_dependent = true;
  EXPECT_FALSE(engine_.Submit(dd).ValueOrDie().plan_cache_hit);

  const PlanCache::Stats stats = engine_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST_F(QueryEngineTest, ReplaceInvalidatesCachedPlansAndRestartsCap) {
  ASSERT_TRUE(engine_.OpenSession("alice", 50.0).ok());
  EXPECT_FALSE(engine_.Submit(Request("alice", "salaries", 1.0))
                   .ValueOrDie()
                   .plan_cache_hit);
  EXPECT_TRUE(engine_.Submit(Request("alice", "salaries", 1.0))
                  .ValueOrDie()
                  .plan_cache_hit);

  ASSERT_TRUE(
      engine_.ReplacePolicy("salaries", LinePolicy(16), Ramp(16), 7.0).ok());
  EXPECT_EQ(engine_.plan_cache_stats().entries, 0u);
  const QueryResult after =
      engine_.Submit(Request("alice", "salaries", 1.0)).ValueOrDie();
  EXPECT_FALSE(after.plan_cache_hit);
  // New data, fresh cap ledger.
  EXPECT_NEAR(after.policy_remaining.value(), 6.0, 1e-9);

  ASSERT_TRUE(engine_.UnregisterPolicy("salaries").ok());
  EXPECT_EQ(engine_.Submit(Request("alice", "salaries", 1.0)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryEngineTest, WarmCacheOptionPlansAtRegistration) {
  QueryEngine warm(EngineOptions{/*seed=*/1, /*warm_plan_cache=*/true});
  ASSERT_TRUE(
      warm.RegisterPolicy("p", LinePolicy(16), Ramp(16), 10.0).ok());
  ASSERT_TRUE(warm.OpenSession("s", 10.0).ok());
  EXPECT_TRUE(warm.Submit(Request("s", "p", 1.0)).ValueOrDie().plan_cache_hit);
}

TEST_F(QueryEngineTest, SessionBudgetExhaustionRefusesBeforeRelease) {
  ASSERT_TRUE(engine_.OpenSession("alice", 1.0).ok());
  ASSERT_TRUE(engine_.Submit(Request("alice", "salaries", 0.6)).ok());

  const Result<QueryResult> refused =
      engine_.Submit(Request("alice", "salaries", 0.6));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(refused.status().message().find("session/alice"),
            std::string::npos);
  // The refusal left both ledgers untouched.
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 0.4, 1e-9);
  EXPECT_NEAR(*engine_.PolicyRemaining("salaries"), 99.4, 1e-9);

  // A smaller query still fits.
  EXPECT_TRUE(engine_.Submit(Request("alice", "salaries", 0.4)).ok());
  EXPECT_EQ(
      engine_.Submit(Request("alice", "salaries", 0.01)).status().code(),
      StatusCode::kOutOfRange);
}

TEST_F(QueryEngineTest, PolicyCapIsSharedAcrossSessions) {
  ASSERT_TRUE(engine_.RegisterPolicy("scarce", LinePolicy(16), Ramp(16), 1.0)
                  .ok());
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  ASSERT_TRUE(engine_.OpenSession("bob", 10.0).ok());

  ASSERT_TRUE(engine_.Submit(Request("alice", "scarce", 0.7)).ok());
  // Bob's session has plenty left, but the data owner's cap does not.
  const Result<QueryResult> refused =
      engine_.Submit(Request("bob", "scarce", 0.5));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(refused.status().message().find("policy/scarce"),
            std::string::npos);
  // Bob's session ledger must not record the refused spend.
  EXPECT_NEAR(*engine_.SessionRemaining("bob"), 10.0, 1e-9);
  EXPECT_TRUE(engine_.Submit(Request("bob", "scarce", 0.3)).ok());
}

TEST_F(QueryEngineTest, RequestValidation) {
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  EXPECT_EQ(engine_.Submit(Request("ghost", "salaries", 1.0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Submit(Request("alice", "ghost", 1.0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Submit(Request("alice", "salaries", 0.0)).status().code(),
            StatusCode::kInvalidArgument);

  QueryRequest mismatched = Request("alice", "salaries", 1.0);
  mismatched.workload = IdentityWorkload(8);
  EXPECT_EQ(engine_.Submit(mismatched).status().code(),
            StatusCode::kInvalidArgument);

  QueryRequest empty = Request("alice", "salaries", 1.0);
  empty.workload = Workload();
  EXPECT_EQ(engine_.Submit(empty).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(engine_.OpenSession("alice", 1.0).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(engine_.CloseSession("alice").ok());
  EXPECT_EQ(engine_.Submit(Request("alice", "salaries", 1.0)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryEngineTest, RangeWorkloadsDispatchToTheFastPathOnThetaGrids) {
  // θ=4 over 8x8: the planner picks grid-theta-range, and an explicit
  // range request must bypass the full-histogram adapter.
  ASSERT_TRUE(engine_
                  .RegisterPolicy("slab", GridPolicy(DomainShape({8, 8}), 4),
                                  Ramp(64), 100.0)
                  .ok());
  ASSERT_TRUE(engine_.OpenSession("carol", 10.0).ok());

  QueryRequest request;
  request.session = "carol";
  request.policy = "slab";
  request.ranges = RangeWorkload("q", DomainShape({8, 8}),
                                 {{{0, 0}, {3, 3}}, {{2, 1}, {7, 6}}});
  request.epsilon = 1.0;
  const QueryResult fast = engine_.Submit(request).ValueOrDie();
  EXPECT_EQ(fast.plan_kind, "grid-theta-range");
  EXPECT_TRUE(fast.range_fast_path);
  EXPECT_EQ(fast.answers.size(), 2u);
  EXPECT_NEAR(fast.session_remaining.value(), 9.0, 1e-9);

  // A dense workload on the same policy takes the histogram path.
  QueryRequest dense;
  dense.session = "carol";
  dense.policy = "slab";
  dense.workload = IdentityWorkload(64);
  dense.epsilon = 1.0;
  const QueryResult hist = engine_.Submit(dense).ValueOrDie();
  EXPECT_EQ(hist.plan_kind, "grid-theta-range");
  EXPECT_FALSE(hist.range_fast_path);
  EXPECT_TRUE(hist.plan_cache_hit);  // one plan serves both paths
}

TEST_F(QueryEngineTest, RangeWorkloadsFallBackToHistogramElsewhere) {
  ASSERT_TRUE(engine_.OpenSession("carol", 10.0).ok());

  // Ranges on a tree policy: answered from x̂ via summed-area table.
  QueryRequest request;
  request.session = "carol";
  request.policy = "salaries";
  request.ranges =
      RangeWorkload("halves", DomainShape({16}), {{{0}, {7}}, {{8}, {15}}});
  request.epsilon = 1.0;
  const QueryResult result = engine_.Submit(request).ValueOrDie();
  EXPECT_EQ(result.plan_kind, "tree-transform");
  EXPECT_FALSE(result.range_fast_path);
  EXPECT_EQ(result.answers.size(), 2u);
  // The two halves partition the domain, and reconstruction pins the
  // histogram estimate's total to the public n = Σ Ramp(16) = 43.
  EXPECT_NEAR(result.answers[0] + result.answers[1], 43.0, 1e-6);

  // A request naming both representations is ambiguous.
  QueryRequest both;
  both.session = "carol";
  both.policy = "salaries";
  both.workload = IdentityWorkload(16);
  both.ranges = RangeWorkload("r", DomainShape({16}), {{{0}, {15}}});
  both.epsilon = 1.0;
  EXPECT_EQ(engine_.Submit(both).status().code(),
            StatusCode::kInvalidArgument);

  // Range domain size must match the policy domain.
  QueryRequest mismatched;
  mismatched.session = "carol";
  mismatched.policy = "salaries";
  mismatched.ranges = RangeWorkload("r", DomainShape({8}), {{{0}, {7}}});
  mismatched.epsilon = 1.0;
  EXPECT_EQ(engine_.Submit(mismatched).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QueryEngineTest, MisshapenRangeDomainSkipsTheFastPath) {
  // Same flattened size as the 8x8 slab policy but 1D geometry: the
  // engine must not hand it to the 2D slab reconstruction.
  ASSERT_TRUE(engine_
                  .RegisterPolicy("slab", GridPolicy(DomainShape({8, 8}), 4),
                                  Ramp(64), 100.0)
                  .ok());
  ASSERT_TRUE(engine_.OpenSession("carol", 10.0).ok());
  QueryRequest request;
  request.session = "carol";
  request.policy = "slab";
  request.ranges = RangeWorkload("flat", DomainShape({64}), {{{0}, {63}}});
  request.epsilon = 1.0;
  const QueryResult result = engine_.Submit(request).ValueOrDie();
  EXPECT_EQ(result.plan_kind, "grid-theta-range");
  EXPECT_FALSE(result.range_fast_path);
  EXPECT_EQ(result.answers.size(), 1u);
}

TEST_F(QueryEngineTest, HandleRequestsMatchStringRequests) {
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  QueryRequest request = Request("alice", "salaries", 1.0);
  request.session_handle = engine_.ResolveSession("alice").ValueOrDie();
  request.policy_handle = engine_.ResolvePolicy("salaries").ValueOrDie();
  // Strings are ignored when handles are valid.
  request.session = "nonsense";
  request.policy = "nonsense";
  const QueryResult result = engine_.Submit(request).ValueOrDie();
  EXPECT_EQ(result.answers.size(), 16u);
  EXPECT_NEAR(result.session_remaining.value(), 9.0, 1e-9);
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 9.0, 1e-9);

  // A policy handle survives Replace and charges the new version's
  // fresh ledger.
  ASSERT_TRUE(
      engine_.ReplacePolicy("salaries", LinePolicy(16), Ramp(16), 7.0).ok());
  const QueryResult after = engine_.Submit(request).ValueOrDie();
  EXPECT_NEAR(after.policy_remaining.value(), 6.0, 1e-9);

  // Handles die with their referents.
  ASSERT_TRUE(engine_.UnregisterPolicy("salaries").ok());
  EXPECT_EQ(engine_.Submit(request).status().code(), StatusCode::kNotFound);
  QueryRequest stale_session = Request("alice", "locations", 1.0);
  stale_session.session_handle = request.session_handle;
  ASSERT_TRUE(engine_.CloseSession("alice").ok());
  EXPECT_EQ(engine_.Submit(stale_session).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryEngineTest, ResolveUnknownNamesFails) {
  EXPECT_EQ(engine_.ResolveSession("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.ResolvePolicy("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryEngineTest, BatchKeepsGoingPastFailures) {
  ASSERT_TRUE(engine_.OpenSession("alice", 1.0).ok());
  const std::vector<QueryRequest> batch = {
      Request("alice", "salaries", 0.5),
      Request("alice", "ghost", 0.1),
      Request("alice", "locations", 2.0),  // over session budget
      Request("alice", "classic-dp", 0.5),
  };
  const std::vector<Result<QueryResult>> results = engine_.SubmitBatch(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_EQ(results[2].status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(results[3].ok());
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 0.0, 1e-9);
}

TEST_F(QueryEngineTest, BatchGroupChargesOnceAndPreservesPerEntryResults) {
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  // Three same-(session, policy) requests: one group, one ledger entry
  // of sum(eps), per-entry answers preserved.
  const std::vector<QueryRequest> batch = {
      Request("alice", "salaries", 0.5), Request("alice", "salaries", 0.25),
      Request("alice", "salaries", 0.25)};
  const auto results = engine_.SubmitBatch(batch);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.ValueOrDie().answers.size(), 16u);
    // Post-charge balance of the whole group's single charge.
    EXPECT_NEAR(result.ValueOrDie().session_remaining.value(), 9.0, 1e-9);
  }
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 9.0, 1e-9);
  EXPECT_NEAR(*engine_.PolicyRemaining("salaries"), 99.0, 1e-9);
  // One grouped audit entry, not three.
  const std::string audit = engine_.SessionAudit("alice").ValueOrDie();
  EXPECT_NE(audit.find("batch[3]"), std::string::npos);
}

TEST_F(QueryEngineTest, OverBudgetGroupDegradesToPrefixAdmission) {
  // The grouped sum does not fit, so the group must fall back to
  // per-entry charges in batch order — admitting exactly the prefix
  // that individual Submits would have admitted.
  ASSERT_TRUE(engine_.OpenSession("alice", 1.0).ok());
  const std::vector<QueryRequest> batch = {
      Request("alice", "salaries", 0.6), Request("alice", "salaries", 0.3),
      Request("alice", "salaries", 0.3)};
  const auto results = engine_.SubmitBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kOutOfRange);
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 0.1, 1e-9);
}

TEST_F(QueryEngineTest, DisjointBatchChargesMaxEpsilonOnBothLedgers) {
  // Acceptance pin: SpendParallel charges max(eps) for a
  // declared-disjoint batch, sum(eps) otherwise — on the session AND
  // the policy ledger.
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  const std::vector<QueryRequest> batch = {
      Request("alice", "salaries", 0.3), Request("alice", "salaries", 0.5),
      Request("alice", "salaries", 0.2)};

  BatchOptions disjoint;
  disjoint.disjoint_domains = true;
  const auto parallel = engine_.SubmitBatch(batch, disjoint);
  for (const auto& result : parallel) ASSERT_TRUE(result.ok());
  // max(0.3, 0.5, 0.2) = 0.5 once, on both ledgers.
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 9.5, 1e-9);
  EXPECT_NEAR(*engine_.PolicyRemaining("salaries"), 99.5, 1e-9);
  // The audit trail marks the parallel-composition charge.
  const std::string audit = engine_.SessionAudit("alice").ValueOrDie();
  EXPECT_NE(audit.find("parallel x3"), std::string::npos);

  // The same batch without the declaration composes sequentially.
  const auto sequential = engine_.SubmitBatch(batch);
  for (const auto& result : sequential) ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 8.5, 1e-9);
  EXPECT_NEAR(*engine_.PolicyRemaining("salaries"), 98.5, 1e-9);
}

TEST_F(QueryEngineTest, DisjointBatchRefusesAllOrNothing) {
  // Parallel composition covers the whole declared-disjoint set or
  // none of it: if max(eps) does not fit, nothing is charged and no
  // entry is released.
  ASSERT_TRUE(engine_.OpenSession("alice", 0.4).ok());
  const std::vector<QueryRequest> batch = {
      Request("alice", "salaries", 0.3), Request("alice", "salaries", 0.5)};
  BatchOptions disjoint;
  disjoint.disjoint_domains = true;
  const auto results = engine_.SubmitBatch(batch, disjoint);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(results[1].status().code(), StatusCode::kOutOfRange);
  EXPECT_NEAR(*engine_.SessionRemaining("alice"), 0.4, 1e-9);
}

TEST_F(QueryEngineTest, AuditTrailNamesWorkloadPolicyAndPlan) {
  ASSERT_TRUE(engine_.OpenSession("alice", 10.0).ok());
  ASSERT_TRUE(engine_.Submit(Request("alice", "salaries", 1.0)).ok());
  const std::string audit = engine_.SessionAudit("alice").ValueOrDie();
  EXPECT_NE(audit.find("I_16"), std::string::npos);
  EXPECT_NE(audit.find("salaries"), std::string::npos);
  EXPECT_NE(audit.find("tree-transform"), std::string::npos);
}

TEST_F(QueryEngineTest, MetadataAccessor) {
  const PolicyMetadata meta =
      engine_.GetPolicyMetadata("classic-dp").ValueOrDie();
  EXPECT_TRUE(meta.has_bottom);
  EXPECT_TRUE(meta.is_tree);
  EXPECT_EQ(engine_.num_policies(), 3u);
}

}  // namespace
}  // namespace blowfish
