#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace blowfish {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(Status, AllCodesStringify) {
  EXPECT_NE(Status::OutOfRange("x").ToString().find("OutOfRange"),
            std::string::npos);
  EXPECT_NE(Status::NotFound("x").ToString().find("NotFound"),
            std::string::npos);
  EXPECT_NE(Status::NumericalError("x").ToString().find("NumericalError"),
            std::string::npos);
  EXPECT_NE(Status::IOError("x").ToString().find("IOError"),
            std::string::npos);
  EXPECT_NE(Status::Unimplemented("x").ToString().find("Unimplemented"),
            std::string::npos);
  EXPECT_NE(Status::Internal("x").ToString().find("Internal"),
            std::string::npos);
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.ValueOrDie(), 42);
  EXPECT_EQ(*ok_result, 42);

  Result<int> err_result(Status::NotFound("nope"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveExtractsValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultDeath, ValueOrDieOnErrorAborts) {
  Result<int> err(Status::Internal("boom"));
  EXPECT_DEATH(err.ValueOrDie(), "boom");
}

TEST(StatusDeath, CheckAbortsOnError) {
  EXPECT_DEATH(Status::IOError("disk gone").Check(), "disk gone");
}

TEST(ReturnNotOk, PropagatesErrors) {
  const auto f = [](bool fail) -> Status {
    BF_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_EQ(f(true).message(), "inner");
}

TEST(CheckMacros, ComparisonsPassAndFail) {
  BF_CHECK_EQ(1, 1);
  BF_CHECK_LT(1, 2);
  BF_CHECK_GE(2, 2);
  EXPECT_DEATH(BF_CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(BF_CHECK_MSG(false, "custom " << 7), "custom 7");
}

TEST(Logging, LevelFilteringWorks) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  BF_LOG(kInfo) << "should be suppressed";  // no crash, no assertion
  SetLogLevel(old);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  double busy = 0.0;
  for (int i = 0; i < 100000; ++i) busy += i * 1e-9;
  EXPECT_GE(sw.ElapsedSeconds() + busy * 0.0, 0.0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace blowfish
