#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace blowfish {
namespace {

Matrix RandomDense(size_t rows, size_t cols, double density, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j)
      if (rng->Uniform() < density) m(i, j) = rng->Normal();
  return m;
}

TEST(Sparse, TripletsSumDuplicatesAndDropZeros) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 3.0}, {1, 0, 5.0}, {1, 0, -5.0}});
  EXPECT_EQ(m.nnz(), 2u);
  const Matrix d = m.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(Sparse, MultiplyVectorMatchesDense) {
  Rng rng(17);
  const Matrix dense = RandomDense(7, 9, 0.4, &rng);
  const SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector x(9);
  for (double& v : x) v = rng.Normal();
  const Vector ys = sparse.MultiplyVector(x);
  const Vector yd = dense.MultiplyVector(x);
  for (size_t i = 0; i < 7; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Sparse, TransposeMultiplyVectorMatchesDense) {
  Rng rng(18);
  const Matrix dense = RandomDense(6, 4, 0.5, &rng);
  const SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector x(6);
  for (double& v : x) v = rng.Normal();
  const Vector ys = sparse.TransposeMultiplyVector(x);
  const Vector yd = dense.TransposeMultiplyVector(x);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Sparse, SparseSparseProductMatchesDense) {
  Rng rng(19);
  const Matrix a = RandomDense(5, 8, 0.35, &rng);
  const Matrix b = RandomDense(8, 6, 0.35, &rng);
  const Matrix prod = SparseMatrix::FromDense(a)
                          .Multiply(SparseMatrix::FromDense(b))
                          .ToDense();
  EXPECT_LT(prod.MaxAbsDiff(a.Multiply(b)), 1e-12);
}

TEST(Sparse, TransposeRoundTrip) {
  Rng rng(20);
  const Matrix a = RandomDense(5, 3, 0.5, &rng);
  const SparseMatrix s = SparseMatrix::FromDense(a);
  EXPECT_LT(s.Transpose().Transpose().ToDense().MaxAbsDiff(a), 1e-15);
  EXPECT_LT(s.Transpose().ToDense().MaxAbsDiff(a.Transpose()), 1e-15);
}

TEST(Sparse, ColumnL1Norms) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 2, {{0, 0, 1.0}, {1, 0, -2.0}, {2, 1, 0.5}});
  const Vector norms = m.ColumnL1Norms();
  EXPECT_DOUBLE_EQ(norms[0], 3.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.5);
  EXPECT_DOUBLE_EQ(m.MaxColumnL1(), 3.0);
}

TEST(Sparse, VStackConcatenatesRows) {
  SparseMatrix a = SparseMatrix::FromTriplets(1, 3, {{0, 0, 1.0}});
  SparseMatrix b = SparseMatrix::FromTriplets(2, 3, {{0, 2, 2.0}, {1, 1, 3.0}});
  SparseMatrix c = a.VStack(b);
  EXPECT_EQ(c.rows(), 3u);
  const Matrix d = c.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 3.0);
}

TEST(Sparse, RowViewAndRowDot) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 4, {{0, 1, 2.0}, {0, 3, -1.0}, {1, 0, 5.0}});
  const SparseMatrix::RowView row = m.Row(0);
  ASSERT_EQ(row.nnz, 2u);
  EXPECT_EQ(row.cols[0], 1u);
  EXPECT_DOUBLE_EQ(row.values[1], -1.0);
  EXPECT_DOUBLE_EQ(m.RowDot(0, {1.0, 1.0, 1.0, 1.0}), 1.0);
}

TEST(Sparse, AbsDiffSum) {
  SparseMatrix a = SparseMatrix::FromTriplets(1, 3, {{0, 0, 1.0}, {0, 2, 2.0}});
  SparseMatrix b = SparseMatrix::FromTriplets(1, 3, {{0, 0, 1.0}, {0, 1, 4.0}});
  EXPECT_DOUBLE_EQ(a.AbsDiffSum(b), 6.0);
  EXPECT_DOUBLE_EQ(a.AbsDiffSum(a), 0.0);
}

TEST(Sparse, IdentityBehaves) {
  const SparseMatrix i = SparseMatrix::Identity(4);
  const Vector x{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(i.MultiplyVector(x), x);
}

TEST(SparseDeath, OutOfRangeTriplet) {
  EXPECT_DEATH(SparseMatrix::FromTriplets(1, 1, {{0, 1, 1.0}}),
               "CHECK failed");
}

}  // namespace
}  // namespace blowfish
