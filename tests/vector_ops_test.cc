#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

namespace blowfish {
namespace {

TEST(VectorOps, AddSubScale) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -1.0, 0.5};
  EXPECT_EQ(Add(a, b), (Vector{5.0, 1.0, 3.5}));
  EXPECT_EQ(Sub(a, b), (Vector{-3.0, 3.0, 2.5}));
  EXPECT_EQ(Scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
}

TEST(VectorOps, AxpyAccumulates) {
  Vector a{1.0, 1.0};
  Axpy(&a, 3.0, {2.0, -1.0});
  EXPECT_EQ(a, (Vector{7.0, -2.0}));
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{3.0, -4.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(NormL1(a), 7.0);
  EXPECT_DOUBLE_EQ(NormL2(a), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(a), 4.0);
}

TEST(VectorOps, SumMeanZeros) {
  const Vector a{0.0, 2.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
  EXPECT_DOUBLE_EQ(Mean(a), 1.5);
  EXPECT_EQ(CountZeros(a), 2u);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VectorOps, PrefixSumsRoundTrip) {
  const Vector x{3.0, 0.0, 2.0, 5.0};
  const Vector p = PrefixSums(x);
  EXPECT_EQ(p, (Vector{3.0, 3.0, 5.0, 10.0}));
  EXPECT_EQ(AdjacentDifferences(p), x);
}

TEST(VectorOps, MeanSquaredError) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0.0, 0.0}, {3.0, 4.0}), 12.5);
}

TEST(VectorOpsDeath, SizeMismatchChecks) {
  EXPECT_DEATH(Add({1.0}, {1.0, 2.0}), "CHECK failed");
  EXPECT_DEATH(Dot({1.0}, {}), "CHECK failed");
}

}  // namespace
}  // namespace blowfish
