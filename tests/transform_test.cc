// The transformational-equivalence engine: the W x = W_G x_G identity
// (Theorems 4.1 / 4.3), tree vs conjugate-gradient agreement, exact
// reconstruction, and the Lemma 5.1 support structure of transformed
// queries.

#include <set>

#include <gtest/gtest.h>

#include "core/transform.h"
#include "rng/rng.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector RandomDatabase(size_t k, Rng* rng) {
  Vector x(k);
  for (double& v : x) v = static_cast<double>(rng->UniformInt(0, 20));
  return x;
}

struct PolicyCase {
  std::string label;
  Policy policy;
};

std::vector<PolicyCase> EquivalencePolicies() {
  std::vector<PolicyCase> cases;
  cases.push_back({"line8", LinePolicy(8)});
  cases.push_back({"theta8_3", Theta1DPolicy(8, 3)});
  cases.push_back({"grid4x4", GridPolicy(DomainShape({4, 4}), 1)});
  cases.push_back({"grid3x3_t2", GridPolicy(DomainShape({3, 3}), 2)});
  cases.push_back({"unboundedDP", UnboundedDpPolicy(7)});
  cases.push_back({"boundedDP", BoundedDpPolicy(6)});
  cases.push_back({"cycle7", Policy{"cycle7", DomainShape({7}), CycleGraph(7)}});
  return cases;
}

class TransformIdentityTest
    : public ::testing::TestWithParam<PolicyCase> {};

// The core identity behind all equivalence theorems: W x = W_G x_G
// (plus the public Case-II constants, which ReconstructHistogram folds
// back in). Equivalent statement tested here: reconstructing from the
// *noise-free* transformed database returns the database exactly.
TEST_P(TransformIdentityTest, NoiseFreeReconstructionIsExact) {
  const Policy& policy = GetParam().policy;
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const Vector x = RandomDatabase(policy.domain_size(), &rng);
    const Vector xg = t.TransformDatabase(x);
    const Vector rebuilt = t.ReconstructHistogram(xg, t.ComponentTotals(x));
    ASSERT_EQ(rebuilt.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(rebuilt[i], x[i], 1e-6) << GetParam().label << " i=" << i;
    }
  }
}

TEST_P(TransformIdentityTest, WorkloadAnswersAgreeThroughTransform) {
  const Policy& policy = GetParam().policy;
  const size_t k = policy.domain_size();
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  const Workload w = CumulativeWorkload(k);
  const SparseMatrix wg = t.TransformWorkload(w.matrix());
  EXPECT_EQ(wg.cols(), t.num_edges());

  Rng rng(7);
  const Vector x = RandomDatabase(k, &rng);
  const Vector xg = t.TransformDatabase(x);
  const Vector truth = w.Answer(x);
  const Vector transformed_answer = wg.MultiplyVector(xg);
  // W x = W_G x_G + c(W, n): recover the constant from a second
  // database with the same component totals — or directly: the
  // difference must equal W applied to the reconstruction residual,
  // which is zero, so compare via reconstruction.
  const Vector rebuilt = t.ReconstructHistogram(xg, t.ComponentTotals(x));
  const Vector rebuilt_answer = w.Answer(rebuilt);
  for (size_t q = 0; q < truth.size(); ++q) {
    EXPECT_NEAR(truth[q], rebuilt_answer[q], 1e-6)
        << GetParam().label << " q=" << q;
  }
  // And the explicit identity with constants: c_q = truth - W_G x_G
  // must be independent of the (fixed-total) database.
  const Vector x2 = RandomDatabase(k, &rng);
  // Adjust x2 so component totals match x (constants depend on totals).
  // Simplest: scale-free check only when totals already match.
  if (t.ComponentTotals(x) == t.ComponentTotals(x2)) {
    const Vector truth2 = w.Answer(x2);
    const Vector ans2 = wg.MultiplyVector(t.TransformDatabase(x2));
    for (size_t q = 0; q < truth.size(); ++q) {
      EXPECT_NEAR(truth[q] - transformed_answer[q], truth2[q] - ans2[q],
                  1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, TransformIdentityTest,
                         ::testing::ValuesIn(EquivalencePolicies()),
                         [](const auto& param_info) { return param_info.param.label; });

// The line policy's transformed database is the prefix-sum vector
// (Algorithm 1, Example 4.1).
TEST(Transform, LinePolicyTransformIsPrefixSums) {
  const size_t k = 7;
  const PolicyTransform t =
      PolicyTransform::Create(LinePolicy(k)).ValueOrDie();
  EXPECT_TRUE(t.is_tree());
  const Vector x{2.0, 0.0, 3.0, 1.0, 0.0, 4.0, 5.0};
  const Vector xg = t.TransformDatabase(x);
  ASSERT_EQ(xg.size(), k - 1);  // edges of the reduced line
  const Vector prefix = PrefixSums(x);
  for (size_t i = 0; i + 1 < k; ++i) {
    EXPECT_NEAR(xg[i], prefix[i], 1e-9) << "i=" << i;
  }
}

// Tree sweep and the general CG path must agree on tree policies.
TEST(Transform, TreeAndGeneralPathsAgree) {
  const size_t k = 9;
  // Build a bushy tree policy: star-of-paths.
  Graph g(k);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(0, 6);
  g.AddEdge(6, 7);
  g.AddEdge(7, 8);
  const Policy tree_policy{"bushy", DomainShape({k}), g};
  const PolicyTransform t = PolicyTransform::Create(tree_policy).ValueOrDie();
  ASSERT_TRUE(t.is_tree());

  Rng rng(3);
  const Vector x = RandomDatabase(k, &rng);
  const Vector fast = t.TransformDatabase(x);

  // General path: x_G = P^T (P P^T)^{-1} x' computed densely here.
  const Vector reduced = ReduceDatabase(x, t.reduction());
  const Matrix pg = t.pg().ToDense();
  // Solve (P P^T) y = reduced by Gaussian elimination via eigen (small).
  const Matrix ppt = pg.GramRows();
  // Simple dense solve through Cholesky-free route: use CG on dense op.
  Vector y(reduced.size(), 0.0);
  {
    Vector r = reduced, p = r;
    double rs = Dot(r, r);
    for (int it = 0; it < 200 && rs > 1e-20; ++it) {
      const Vector ap = ppt.MultiplyVector(p);
      const double alpha = rs / Dot(p, ap);
      Axpy(&y, alpha, p);
      Axpy(&r, -alpha, ap);
      const double rs_new = Dot(r, r);
      for (size_t i = 0; i < p.size(); ++i) p[i] = r[i] + (rs_new / rs) * p[i];
      rs = rs_new;
    }
  }
  const Vector slow = pg.TransposeMultiplyVector(y);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7) << "edge " << i;
  }
}

// Lemma 5.1: the support of a transformed counting query is exactly
// the set of policy edges with one endpoint in the query's support.
TEST(Transform, Lemma51SupportStructure) {
  const size_t k = 10;
  const Policy policy = Theta1DPolicy(k, 2);
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();

  // Query counts {3, 4, 5}.
  std::vector<Triplet> trip{{0, 3, 1.0}, {0, 4, 1.0}, {0, 5, 1.0}};
  const SparseMatrix q = SparseMatrix::FromTriplets(1, k, std::move(trip));
  const SparseMatrix qg = t.TransformWorkload(q);

  const std::set<size_t> support{3, 4, 5};
  const Graph& reduced = t.reduction().graph;
  const SparseMatrix::RowView row = qg.Row(0);
  std::set<size_t> nonzero_edges(row.cols, row.cols + row.nnz);
  for (size_t e = 0; e < reduced.num_edges(); ++e) {
    const Graph::Edge edge = reduced.edges()[e];
    const size_t u_old = t.reduction().new_to_old[edge.u];
    // ⊥ stands for the removed vertex (k-1 here), outside the support.
    const size_t v_old = (edge.v == Graph::kBottom)
                             ? t.reduction().removed[0]
                             : t.reduction().new_to_old[edge.v];
    const bool u_in = support.count(u_old) > 0;
    const bool v_in = support.count(v_old) > 0;
    EXPECT_EQ(nonzero_edges.count(e) > 0, u_in != v_in)
        << "edge " << u_old << "-" << v_old;
  }
}

TEST(Transform, PolicySensitivityMatchesDirectComputation) {
  const Policy policy = Theta1DPolicy(9, 3);
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  const Workload w = CumulativeWorkload(9);
  EXPECT_DOUBLE_EQ(t.PolicySensitivity(w.matrix()), 3.0);
}

TEST(Transform, RejectsEmptyPolicy) {
  Policy empty{"empty", DomainShape({3}), Graph(3)};
  EXPECT_FALSE(PolicyTransform::Create(empty).ok());
}

TEST(Transform, DisconnectedPolicyReconstruction) {
  // Sensitive-attribute policy: two components; totals per component
  // are public and reconstruction must use both.
  const DomainShape domain({3, 2});
  const Policy policy = SensitiveAttributePolicy(domain, {0});
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  EXPECT_EQ(t.reduction().removed.size(), 2u);
  Rng rng(5);
  const Vector x = RandomDatabase(domain.size(), &rng);
  const Vector xg = t.TransformDatabase(x);
  const Vector rebuilt = t.ReconstructHistogram(xg, t.ComponentTotals(x));
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(rebuilt[i], x[i], 1e-7);
}

}  // namespace
}  // namespace blowfish
