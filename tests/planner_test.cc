// Policy-aware mechanism selection.

#include <gtest/gtest.h>

#include "core/planner.h"
#include "graph/builders.h"

namespace blowfish {
namespace {

TEST(Planner, LinePolicyGetsTreeTransformWithConsistency) {
  PlanRequest req{LinePolicy(16), /*prefer_data_dependent=*/false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_EQ(plan.kind, "tree-transform");
  EXPECT_NE(plan.rationale.find("isotonic"), std::string::npos);
  ASSERT_NE(plan.mechanism, nullptr);
  // The mechanism actually runs.
  Vector x(16, 1.0);
  Rng rng(1);
  EXPECT_EQ(plan.mechanism->Run(x, 1.0, &rng).size(), 16u);
}

TEST(Planner, Theta1DGetsSpanner) {
  PlanRequest req{Theta1DPolicy(32, 4), false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_EQ(plan.kind, "spanner-tree");
  EXPECT_EQ(plan.stretch, 3);
  ASSERT_NE(plan.mechanism, nullptr);
}

TEST(Planner, UnitGridGetsMatrixMechanism) {
  PlanRequest req{GridPolicy(DomainShape({6, 6}), 1), false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_EQ(plan.kind, "grid-matrix");
  ASSERT_NE(plan.mechanism, nullptr);
}

TEST(Planner, GridThetaRoutedToRangeMechanism) {
  PlanRequest req{GridPolicy(DomainShape({8, 8}), 4), false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_EQ(plan.kind, "grid-theta-range");
  // The slab strategy is wrapped in the histogram adapter, so the
  // uniform release protocol holds here too.
  ASSERT_NE(plan.mechanism, nullptr);
  EXPECT_GE(plan.stretch, 1);
  Vector x(64, 2.0);
  Rng rng(3);
  EXPECT_EQ(plan.mechanism->Run(x, 1.0, &rng).size(), 64u);
}

TEST(Planner, CycleFallsBackToSpanningTree) {
  PlanRequest req{Policy{"cycle", DomainShape({10}), CycleGraph(10)}, false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_EQ(plan.kind, "spanning-tree-fallback");
  // Section 4.3: dropping one cycle edge stretches it to n-1.
  EXPECT_EQ(plan.stretch, 9);
  ASSERT_NE(plan.mechanism, nullptr);
}

TEST(Planner, UnboundedDpPolicyIsATree) {
  // Star-⊥ is a tree through ⊥: tree transform with P_G = I.
  PlanRequest req{UnboundedDpPolicy(8), false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_EQ(plan.kind, "tree-transform");
}

TEST(Planner, DataDependentPreferenceSelectsDawa) {
  PlanRequest req{LinePolicy(32), /*prefer_data_dependent=*/true};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  EXPECT_NE(plan.mechanism->name().find("DAWA"), std::string::npos);
}

TEST(Planner, EmptyPolicyRejected) {
  PlanRequest req{Policy{"empty", DomainShape({4}), Graph(4)}, false};
  EXPECT_FALSE(PlanMechanism(std::move(req)).ok());
}

TEST(Planner, SensitiveAttributePolicyReducesToTree) {
  // Each component is a clique; cliques are not trees, so this goes
  // through the fallback or tree path depending on component size.
  const DomainShape domain({2, 3});
  PlanRequest req{SensitiveAttributePolicy(domain, {0}), false};
  const Plan plan = PlanMechanism(std::move(req)).ValueOrDie();
  // Components are single edges (attribute 0 has 2 values): reduced
  // graph is a forest joined at ⊥ -> tree transform.
  EXPECT_EQ(plan.kind, "tree-transform");
}

}  // namespace
}  // namespace blowfish
