// The grid strategy (Section 5.2.2 / Theorem 5.4): per-line Privelet
// matrix mechanism for R_{k^d} under G¹_{k^d}.

#include <gtest/gtest.h>

#include "core/mechanisms_2d.h"
#include "mech/error.h"
#include "mech/privelet.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(GridMechanism, RejectsOneDimensionalAndNonGridPolicies) {
  EXPECT_FALSE(GridBlowfishMechanism::Create(LinePolicy(8)).ok());
  EXPECT_FALSE(
      GridBlowfishMechanism::Create(GridPolicy(DomainShape({4, 4}), 2)).ok());
}

TEST(GridMechanism, NoiseFreeReconstructionIsExact) {
  const DomainShape domain({5, 6});
  auto mech =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  Rng rng(1);
  Vector x(domain.size());
  for (double& v : x) v = static_cast<double>(rng.UniformInt(0, 9));
  const Vector est = mech->Run(x, 1e9, &rng);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(est[i], x[i], 1e-4);
}

TEST(GridMechanism, UnbiasedUnderNoise) {
  const DomainShape domain({6, 6});
  auto mech =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  Vector x(36, 4.0);
  Rng rng(2);
  Vector mean(36, 0.0);
  const size_t trials = 2000;
  const Vector xg = mech->PrecomputeTransformed(x);
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech->RunOnTransformed(xg, Sum(x), 1.0, &rng);
    for (size_t i = 0; i < 36; ++i) mean[i] += est[i] / trials;
  }
  for (size_t i = 0; i < 36; ++i) EXPECT_NEAR(mean[i], 4.0, 1.5);
}

TEST(GridMechanism, PreservesDatabaseSize) {
  const DomainShape domain({8, 8});
  auto mech =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  Vector x(64, 2.0);
  Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    EXPECT_NEAR(Sum(mech->Run(x, 0.5, &rng)), 128.0, 1e-5);
  }
}

TEST(GridMechanism, BeatsPriveletOn2DRanges) {
  // Figure 8a's shape: Transformed+Privelet under G¹_{k²} beats ε/2
  // Privelet under DP.
  const size_t k = 24;
  const DomainShape domain({k, k});
  Rng qrng(4);
  const RangeWorkload w = RandomRanges(domain, 400, &qrng);
  Vector x(domain.size(), 1.0);
  auto blowfish =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  PriveletMechanism privelet{domain};
  const double eps = 0.1;
  const Vector xg = blowfish->PrecomputeTransformed(x);
  const double n = Sum(x);
  const double b_err =
      MeasureError(
          [&](const Vector&, double e, Rng* rng) {
            return blowfish->RunOnTransformed(xg, n, e, rng);
          },
          w, x, eps, 5, 5)
          .mean;
  const double p_err = MeasureError(
                           [&](const Vector& db, double e, Rng* rng) {
                             return privelet.Run(db, e, rng);
                           },
                           w, x, eps / 2.0, 5, 5)
                           .mean;
  EXPECT_LT(b_err, p_err);
}

TEST(GridMechanism, ThreeDimensionalDomainSupported) {
  // Theorem 5.4 is for general d; verify the line decomposition covers
  // a 3D grid and reconstructs exactly.
  const DomainShape domain({3, 4, 3});
  auto mech =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  Rng rng(5);
  Vector x(domain.size());
  for (double& v : x) v = static_cast<double>(rng.UniformInt(0, 5));
  const Vector est = mech->Run(x, 1e9, &rng);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(est[i], x[i], 1e-4);
}

TEST(GridMechanism, GuaranteeNamesThePolicy) {
  const DomainShape domain({4, 4});
  auto mech =
      GridBlowfishMechanism::Create(GridPolicy(domain, 1)).ValueOrDie();
  EXPECT_NE(mech->Guarantee(1.0).neighbor_model.find("G^1_{4x4}"),
            std::string::npos);
}

}  // namespace
}  // namespace blowfish
