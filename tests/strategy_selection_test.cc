// Strategy selection for the matrix mechanism, including the paper's
// headline effect: the policy transform changes the optimal strategy.

#include <gtest/gtest.h>

#include "core/lower_bounds.h"
#include "core/strategy_selection.h"
#include "core/transform.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(StrategyBuilders, HierarchicalShape) {
  const Matrix t = BuildHierarchicalStrategy(8, 2);
  // 8 leaves + 4 + 2 + 1 = 15 nodes.
  EXPECT_EQ(t.rows(), 15u);
  EXPECT_EQ(t.cols(), 8u);
  // Max column L1 = number of levels = 4.
  EXPECT_DOUBLE_EQ(t.MaxColumnL1(), 4.0);
}

TEST(StrategyBuilders, HierarchicalNonPowerDomain) {
  const Matrix t = BuildHierarchicalStrategy(11, 3);
  EXPECT_EQ(t.cols(), 11u);
  // Root row sums everything.
  const Vector ones(11, 1.0);
  const Vector sums = t.MultiplyVector(ones);
  bool found_root = false;
  for (double s : sums) {
    if (s == 11.0) found_root = true;
  }
  EXPECT_TRUE(found_root);
}

TEST(StrategyBuilders, WaveletSensitivityBalanced) {
  const Matrix h = BuildWaveletStrategy(16).ValueOrDie();
  EXPECT_EQ(h.rows(), 16u);
  // Privelet weighting: every column carries L1 mass h+1 = 5.
  for (size_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(h.ColumnL1(c), 5.0, 1e-9) << "col " << c;
  }
  EXPECT_FALSE(BuildWaveletStrategy(12).ok());
}

TEST(StrategySelection, IdentityWorkloadPicksIdentity) {
  const Matrix w = Matrix::Identity(16);
  const StrategyChoice choice = SelectStrategy(w, 1.0).ValueOrDie();
  EXPECT_EQ(choice.name, "identity");
  // Identity on identity: 2 * 16 / eps^2.
  EXPECT_NEAR(choice.expected_total_squared_error, 32.0, 1e-9);
}

TEST(StrategySelection, RangeWorkloadPicksTreeStrategyAtLargeK) {
  // Total error over all k(k+1)/2 ranges: identity costs Θ(k³), trees
  // Θ(k² log³k) — the crossover sits near k = 512 with these constants
  // (Li et al.'s observation; verified here via the closed-form Gram).
  const Matrix g = RangeWorkloadGram1D(512);
  const StrategyChoice choice = SelectStrategyFromGram(g, 1.0).ValueOrDie();
  EXPECT_NE(choice.name, "identity");
  double identity_err = 0.0;
  for (const StrategyEvaluation& e : choice.evaluations) {
    if (e.name == "identity") identity_err = e.expected_total_squared_error;
  }
  EXPECT_GT(identity_err, 0.0);
  EXPECT_LT(choice.expected_total_squared_error, identity_err);
}

TEST(StrategySelection, GramAndDenseRoutesAgree) {
  const Matrix w = AllRanges1D(32).ToWorkload().matrix().ToDense();
  const StrategyChoice dense = SelectStrategy(w, 1.0).ValueOrDie();
  const StrategyChoice gram =
      SelectStrategyFromGram(RangeWorkloadGram1D(32), 1.0).ValueOrDie();
  EXPECT_EQ(dense.name, gram.name);
  EXPECT_NEAR(dense.expected_total_squared_error,
              gram.expected_total_squared_error,
              1e-6 * gram.expected_total_squared_error);
}

TEST(StrategySelection, TransformFlipsTheOptimum) {
  // The Section 5.2.1 observation, numerically: under plain DP the
  // all-ranges workload wants a tree strategy (at k=512), but its
  // G¹_k transform is 2-sparse per query and the identity strategy
  // wins — at EVERY size.
  const size_t k = 512;
  const Matrix gram = RangeWorkloadGram1D(k);

  const StrategyChoice dp = SelectStrategyFromGram(gram, 1.0).ValueOrDie();
  EXPECT_NE(dp.name, "identity");

  const StrategyChoice blowfish =
      SelectStrategyForPolicyFromGram(gram, LinePolicy(k), 1.0).ValueOrDie();
  EXPECT_EQ(blowfish.name, "identity");
  // And the Blowfish instance is much cheaper overall.
  EXPECT_LT(blowfish.expected_total_squared_error,
            dp.expected_total_squared_error);
}

TEST(StrategySelection, PolicyVariantMatchesManualTransform) {
  const size_t k = 16;
  const SparseMatrix w = CumulativeWorkload(k).matrix();
  const Policy policy = Theta1DPolicy(k, 2);
  const StrategyChoice via_policy =
      SelectStrategyForPolicy(w, policy, 0.5).ValueOrDie();
  // Manual: transform then select.
  const PolicyTransform t = PolicyTransform::Create(policy).ValueOrDie();
  const StrategyChoice manual =
      SelectStrategy(t.TransformWorkload(w).ToDense(), 0.5).ValueOrDie();
  EXPECT_EQ(via_policy.name, manual.name);
  EXPECT_NEAR(via_policy.expected_total_squared_error,
              manual.expected_total_squared_error, 1e-9);
}

TEST(StrategySelection, RejectsEmptyWorkload) {
  EXPECT_FALSE(SelectStrategy(Matrix(), 1.0).ok());
}

}  // namespace
}  // namespace blowfish
