#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/io.h"

namespace blowfish {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, BareCounts) {
  const std::string path = Path("bare.csv");
  WriteFile(path, "# header comment\n1\n2.5\n\n3\n");
  const Vector v = LoadHistogramCsv(path).ValueOrDie();
  EXPECT_EQ(v, (Vector{1.0, 2.5, 3.0}));
}

TEST_F(IoTest, IndexedCountsWithGaps) {
  const std::string path = Path("indexed.csv");
  WriteFile(path, "0,5\n3,7\n1,2\n");
  const Vector v = LoadHistogramCsv(path).ValueOrDie();
  EXPECT_EQ(v, (Vector{5.0, 2.0, 0.0, 7.0}));
}

TEST_F(IoTest, IndexedWithExpectedSizePadsZeros) {
  const std::string path = Path("indexed2.csv");
  WriteFile(path, "2,9\n");
  const Vector v = LoadHistogramCsv(path, 5).ValueOrDie();
  EXPECT_EQ(v, (Vector{0.0, 0.0, 9.0, 0.0, 0.0}));
}

TEST_F(IoTest, DuplicateIndicesSum) {
  const std::string path = Path("dups.csv");
  WriteFile(path, "1,3\n1,4\n");
  const Vector v = LoadHistogramCsv(path).ValueOrDie();
  EXPECT_EQ(v, (Vector{0.0, 7.0}));
}

TEST_F(IoTest, ErrorsAreStatuses) {
  EXPECT_FALSE(LoadHistogramCsv(Path("missing-file.csv")).ok());

  const std::string bad = Path("bad.csv");
  WriteFile(bad, "not-a-number\n");
  EXPECT_FALSE(LoadHistogramCsv(bad).ok());

  const std::string mixed = Path("mixed.csv");
  WriteFile(mixed, "5\n1,2\n");
  EXPECT_FALSE(LoadHistogramCsv(mixed).ok());

  const std::string oob = Path("oob.csv");
  WriteFile(oob, "9,1\n");
  EXPECT_EQ(LoadHistogramCsv(oob, 4).status().code(),
            StatusCode::kOutOfRange);

  const std::string short_file = Path("short.csv");
  WriteFile(short_file, "1\n2\n");
  EXPECT_FALSE(LoadHistogramCsv(short_file, 3).ok());

  const std::string empty = Path("empty.csv");
  WriteFile(empty, "# nothing\n");
  EXPECT_FALSE(LoadHistogramCsv(empty).ok());
}

TEST_F(IoTest, SaveLoadRoundTrip) {
  const std::string path = Path("roundtrip.csv");
  const Vector v{1.5, 0.0, -2.25, 7.0};
  SaveHistogramCsv(path, v).Check();
  const Vector loaded = LoadHistogramCsv(path).ValueOrDie();
  ASSERT_EQ(loaded.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(loaded[i], v[i], 1e-9);
}

TEST_F(IoTest, SaveToInvalidPathFails) {
  EXPECT_FALSE(SaveHistogramCsv("/nonexistent-dir/x.csv", {1.0}).ok());
}

}  // namespace
}  // namespace blowfish
