// P_G construction (Section 4.4): Lemma 4.7 (sensitivity preservation),
// Lemma 4.8 (rank k), Lemma 4.9 / Claim 4.2 (trees map Blowfish
// neighbors to DP neighbors), Lemma 4.10 (Case II), Appendix E
// (Case III).

#include <gtest/gtest.h>

#include "core/pg_matrix.h"
#include "core/policy.h"
#include "core/sensitivity.h"
#include "graph/algorithms.h"
#include "linalg/eigen_sym.h"
#include "linalg/pinv.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

// Figure 2's example: the line graph with the rightmost node replaced
// by ⊥ has a bidiagonal P_G whose inverse is the cumulative workload.
TEST(PgMatrix, Figure2Example) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, Graph::kBottom);
  const Matrix pg = BuildPgMatrix(g).ToDense();
  const Matrix expected{{1.0, 0.0, 0.0}, {-1.0, 1.0, 0.0}, {0.0, -1.0, 1.0}};
  EXPECT_LT(pg.MaxAbsDiff(expected), 1e-15);
  // P_G^{-1} = C'_3 (lower triangular of ones), as in Example 4.1.
  const Matrix inv = RightInverse(pg.Transpose()).ValueOrDie().Transpose();
  const Matrix cumulative{{1.0, 0.0, 0.0}, {1.0, 1.0, 0.0}, {1.0, 1.0, 1.0}};
  EXPECT_LT(inv.MaxAbsDiff(cumulative), 1e-9);
}

TEST(PgMatrix, ColumnsHaveTwoSignedEntries) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(2, Graph::kBottom);
  g.AddEdge(3, Graph::kBottom);
  const SparseMatrix pg = BuildPgMatrix(g);
  EXPECT_EQ(pg.rows(), 4u);
  EXPECT_EQ(pg.cols(), 4u);
  const Vector norms = pg.ColumnL1Norms();
  EXPECT_DOUBLE_EQ(norms[0], 2.0);  // (0,1)
  EXPECT_DOUBLE_EQ(norms[1], 2.0);  // (1,3)
  EXPECT_DOUBLE_EQ(norms[2], 1.0);  // (2,⊥)
  EXPECT_DOUBLE_EQ(norms[3], 1.0);  // (3,⊥)
}

// Lemma 4.8: P_G has rank k for connected graphs with ⊥.
TEST(PgMatrix, FullRowRank) {
  for (size_t k : {3u, 5u, 9u}) {
    Policy theta = Theta1DPolicy(k, 2);
    const PolicyReduction red = ReducePolicyGraph(theta.graph);
    const Matrix pg = BuildPgMatrix(red.graph).ToDense();
    // rank = #positive eigenvalues of P P^T.
    const Vector eigs =
        SymmetricEigenvalues(pg.GramRows()).ValueOrDie();
    size_t rank = 0;
    for (double e : eigs) {
      if (e > 1e-9) ++rank;
    }
    EXPECT_EQ(rank, k - 1) << "k=" << k;  // one vertex replaced by ⊥
  }
}

// Lemma 4.7: policy-specific sensitivity of W equals the unbounded
// sensitivity of W_G, i.e. max column L1 of W' P_G.
TEST(PgMatrix, SensitivityLemmaOnLinePolicy) {
  const size_t k = 6;
  const Policy policy = LinePolicy(k);
  const Workload w = CumulativeWorkload(k);
  // Direct Definition 4.1 evaluation.
  const double direct = PolicySpecificSensitivity(w.matrix(), policy);
  // Through the transform: reduce + multiply.
  const PolicyReduction red = ReducePolicyGraph(policy.graph);
  const SparseMatrix wg =
      ReduceWorkloadMatrix(w.matrix(), red).Multiply(BuildPgMatrix(red.graph));
  EXPECT_DOUBLE_EQ(direct, wg.MaxColumnL1());
  // C_k under the line policy has sensitivity 1: neighbors differ in
  // adjacent values, changing exactly one prefix count.
  EXPECT_DOUBLE_EQ(direct, 1.0);
}

TEST(PgMatrix, SensitivityLemmaOnThetaPolicy) {
  const size_t k = 8;
  const Policy policy = Theta1DPolicy(k, 3);
  const Workload w = CumulativeWorkload(k);
  const double direct = PolicySpecificSensitivity(w.matrix(), policy);
  const PolicyReduction red = ReducePolicyGraph(policy.graph);
  const SparseMatrix wg =
      ReduceWorkloadMatrix(w.matrix(), red).Multiply(BuildPgMatrix(red.graph));
  EXPECT_DOUBLE_EQ(direct, wg.MaxColumnL1());
  // Moving a tuple by θ changes θ prefix counts.
  EXPECT_DOUBLE_EQ(direct, 3.0);
}

// Lemma 4.10 (ii): y, z neighbors under G iff reduced vectors are
// neighbors under G'. Verified by brute force on all single-move
// database pairs.
TEST(PgMatrix, CaseIIPreservesNeighborsBruteForce) {
  const size_t k = 5;
  const Policy policy = Theta1DPolicy(k, 2);
  const PolicyReduction red = ReducePolicyGraph(policy.graph);
  ASSERT_EQ(red.removed.size(), 1u);
  const size_t rv = red.removed[0];

  // Enumerate single-entry moves u -> v on a base database.
  Vector base(k, 2.0);
  for (size_t u = 0; u < k; ++u) {
    for (size_t v = 0; v < k; ++v) {
      if (u == v) continue;
      Vector y = base;
      Vector z = base;
      z[u] -= 1.0;
      z[v] += 1.0;
      const bool neighbors_g = policy.graph.HasEdge(u, v);
      // Reduced vectors.
      const Vector yr = ReduceDatabase(y, red);
      const Vector zr = ReduceDatabase(z, red);
      // Neighbors under G' iff they differ on an edge of the reduced
      // graph: either two entries (+1/-1) on a kept edge, or one entry
      // on a ⊥-edge.
      double l1 = 0.0;
      for (size_t i = 0; i < yr.size(); ++i) l1 += std::fabs(yr[i] - zr[i]);
      if (neighbors_g) {
        const bool involves_removed = (u == rv || v == rv);
        EXPECT_DOUBLE_EQ(l1, involves_removed ? 1.0 : 2.0)
            << "u=" << u << " v=" << v;
      }
    }
  }
}

// Case III (Appendix E): disconnected policies reduce one vertex per
// ungrounded component and share ⊥.
TEST(PgMatrix, DisconnectedPolicyReduction) {
  // Two components: {0,1,2} path and {3,4} edge.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  const PolicyReduction red = ReducePolicyGraph(g);
  EXPECT_EQ(red.removed.size(), 2u);
  EXPECT_EQ(red.removed[0], 2u);  // max index of component 1
  EXPECT_EQ(red.removed[1], 4u);  // max index of component 2
  EXPECT_TRUE(IsConnected(red.graph));  // through the shared ⊥
  EXPECT_TRUE(IsTree(red.graph));
  EXPECT_EQ(red.graph.num_edges(), 3u);
}

TEST(PgMatrix, GroundedComponentsNeedNoRemoval) {
  const Policy policy = UnboundedDpPolicy(4);
  const PolicyReduction red = ReducePolicyGraph(policy.graph);
  EXPECT_TRUE(red.removed.empty());
  EXPECT_EQ(red.new_to_old.size(), 4u);
  // P_G of the star-⊥ policy is the identity.
  const Matrix pg = BuildPgMatrix(red.graph).ToDense();
  EXPECT_LT(pg.MaxAbsDiff(Matrix::Identity(4)), 1e-15);
}

TEST(PgMatrix, PreferredRemovedVertexHonored) {
  const Policy policy = LinePolicy(5);
  const PolicyReduction red = ReducePolicyGraph(policy.graph, 0);
  ASSERT_EQ(red.removed.size(), 1u);
  EXPECT_EQ(red.removed[0], 0u);
}

// Workload reduction identity: W x == W' x_{-v} + (removed coefficient
// terms), checked via reconstruction on the cumulative workload.
TEST(PgMatrix, WorkloadReductionAnswerIdentity) {
  const size_t k = 6;
  const Policy policy = LinePolicy(k);
  const PolicyReduction red = ReducePolicyGraph(policy.graph);
  const Workload w = CumulativeWorkload(k);
  const SparseMatrix w_reduced = ReduceWorkloadMatrix(w.matrix(), red);

  Vector x{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const double n = Sum(x);
  const Vector full_answer = w.Answer(x);
  const Vector reduced_answer =
      w_reduced.MultiplyVector(ReduceDatabase(x, red));
  // For each query, the constant is q[removed] * n (Lemma D.4).
  const size_t rv = red.removed[0];
  const SparseMatrix wt = w.matrix().Transpose();
  Vector removed_coeff(w.num_queries(), 0.0);
  const SparseMatrix::RowView col = wt.Row(rv);
  for (size_t i = 0; i < col.nnz; ++i) removed_coeff[col.cols[i]] = col.values[i];
  for (size_t q = 0; q < w.num_queries(); ++q) {
    EXPECT_NEAR(full_answer[q], reduced_answer[q] + removed_coeff[q] * n,
                1e-9)
        << "query " << q;
  }
}

}  // namespace
}  // namespace blowfish
