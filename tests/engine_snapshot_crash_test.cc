// Crash-safety property test for the snapshot store: a child process
// writes snapshot generations in a tight loop and is SIGKILLed
// mid-stream; the parent then checks the invariant the atomic write
// protocol (tmp + fsync + rename + dir fsync) promises:
//
//   every `snapshot-*.bfs` file on disk is completely valid — a crash
//   during WriteSnapshot can lose the generation being written (at
//   worst leaving a stale `.tmp`), but can never corrupt a previous
//   generation, because no published file is ever written in place.
//
// The parent also restarts a real engine on the crashed store and
// verifies the warm-restore path works: policies come back, requests
// are warm, submits succeed.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "core/policy.h"
#include "engine/query_engine.h"
#include "engine/snapshot_store.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

constexpr int kAcksBeforeKill = 24;

Vector Ramp(size_t n) {
  Vector x(n, 0.0);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 13);
  return x;
}

EngineOptions SnapOptions(const std::string& dir) {
  EngineOptions options;
  options.seed = 2015;
  options.snapshot_path = dir;
  return options;
}

// Child: warm an engine, then write snapshot generations forever, one
// ack byte per completed WriteSnapshot. Runs until killed.
[[noreturn]] void SnapshotUntilKilled(const std::string& dir, int ack_fd) {
  QueryEngine engine(SnapOptions(dir));
  if (!engine.RegisterPolicy("line", LinePolicy(256), Ramp(256), 1e6).ok()) {
    _exit(3);
  }
  if (!engine
           .RegisterPolicy("grid", GridPolicy(DomainShape({12, 12}), 1),
                           Ramp(144), 1e6)
           .ok()) {
    _exit(4);
  }
  if (!engine.OpenSession("s", 1e6).ok()) _exit(5);
  for (const char* policy : {"line", "grid"}) {
    QueryRequest request;
    request.session = "s";
    request.policy = policy;
    request.workload = IdentityWorkload(policy[0] == 'l' ? 256 : 144);
    request.epsilon = 0.01;
    if (!engine.Submit(request).ok()) _exit(6);
  }
  for (uint64_t i = 0; i < 1000000; ++i) {  // backstop; the kill comes first
    if (!engine.WriteSnapshot().ok()) _exit(7);
    const char ack = 'a';
    if (::write(ack_fd, &ack, 1) != 1) _exit(8);
  }
  _exit(9);
}

TEST(SnapshotCrashTest, KillDuringWriteNeverCorruptsPublishedGenerations) {
  char tmpl[] = "/tmp/bfsnapcrash.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    SnapshotUntilKilled(dir, fds[1]);  // never returns
  }
  ::close(fds[1]);

  uint64_t acked = 0;
  char buf[64];
  while (acked < kAcksBeforeKill) {
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n <= 0) break;  // child died early; its exit code says why
    acked += static_cast<uint64_t>(n);
  }
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  EXPECT_TRUE(WIFSIGNALED(wstatus))
      << "child exited " << WEXITSTATUS(wstatus) << " instead of being killed";
  for (;;) {  // drain late acks so `acked` is the true completed count
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n <= 0) break;
    acked += static_cast<uint64_t>(n);
  }
  ::close(fds[0]);
  ASSERT_GE(acked, static_cast<uint64_t>(kAcksBeforeKill));

  // Every published generation file must verify completely clean:
  // rename is the publish point, so a kill mid-write can leave a stale
  // tmp file but never a torn `.bfs`.
  Result<std::vector<std::string>> files = snapshot::ListFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_FALSE(files.ValueOrDie().empty());
  for (const std::string& name : files.ValueOrDie()) {
    snapshot::VerifyReport report;
    ASSERT_TRUE(snapshot::Verify(dir + "/" + name, &report).ok()) << name;
    EXPECT_TRUE(report.footer_ok) << name;
    EXPECT_TRUE(report.errors.empty())
        << name << ": " << report.errors.front();
    EXPECT_EQ(report.policies, 2u) << name;
  }

  // A restarted engine on the crashed store comes up warm.
  QueryEngine engine(SnapOptions(dir));
  const QueryEngine::SnapshotRestoreStats& stats =
      engine.snapshot_restore_stats();
  EXPECT_TRUE(stats.loaded);
  EXPECT_GE(stats.generation, acked);  // at least the acked writes landed
  EXPECT_EQ(stats.policies_restored, 2u);
  EXPECT_TRUE(stats.skipped_files.empty());
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(256);
  request.epsilon = 0.01;
  EXPECT_TRUE(engine.IsWarm(request));
  EXPECT_TRUE(engine.Submit(request).ok());

  // Cleanup (including any crash-orphaned tmp file).
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace blowfish
