// Shard-boundary coverage for the sharded serving layer. Ledgers and
// policies are partitioned by id/name hash; these tests pin the
// operations that must see across every shard: prefix ledger sweeps,
// transform-cache eviction, handle staleness through the generation
// counters, and the all-or-nothing guarantee of charges whose ledgers
// live in different shards.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

Vector Ramp(size_t n) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i % 5);
  return x;
}

TEST(BudgetShards, PrefixCloseSweepsEveryShard) {
  BudgetAccountant accountant;
  // Far more ids than shards: every shard holds several matches and
  // several non-matches.
  const size_t kCount = 8 * BudgetAccountant::kShardCount;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        accountant.OpenLedger("policy/p\x1f" + std::to_string(i), 1.0).ok());
    ASSERT_TRUE(
        accountant.OpenLedger("session/u" + std::to_string(i), 1.0).ok());
  }
  EXPECT_EQ(accountant.CloseLedgersWithPrefix("policy/p\x1f"), kCount);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_FALSE(accountant.HasLedger("policy/p\x1f" + std::to_string(i)));
    EXPECT_TRUE(accountant.HasLedger("session/u" + std::to_string(i)));
  }
  EXPECT_EQ(accountant.CloseLedgersWithPrefix("policy/p\x1f"), 0u);
}

TEST(BudgetShards, HandlesGoStaleOnCloseAndNeverAliasReopens) {
  BudgetAccountant accountant;
  const LedgerHandle first = accountant.OpenLedger("a", 1.0).ValueOrDie();
  ASSERT_TRUE(accountant.CloseLedger("a").ok());
  EXPECT_EQ(accountant.Remaining(first).status().code(),
            StatusCode::kNotFound);
  // Reopening the same id reuses storage but must not resurrect the
  // old handle (generation bump).
  const LedgerHandle second = accountant.OpenLedger("a", 2.0).ValueOrDie();
  EXPECT_EQ(accountant.Remaining(first).status().code(),
            StatusCode::kNotFound);
  EXPECT_NEAR(*accountant.Remaining(second), 2.0, 1e-12);

  // Charges through a stale handle fail without touching the live
  // ledger.
  const LedgerHandle pair[2] = {first, second};
  ChargeTag tag;
  tag.workload = "stale";
  EXPECT_EQ(accountant.Charge(pair, 2, 0.5, tag).code(),
            StatusCode::kNotFound);
  EXPECT_NEAR(*accountant.Remaining(second), 2.0, 1e-12);
}

TEST(BudgetShards, CrossShardChargesAreAtomicUnderContention) {
  // Many (session, policy) ledger pairs; ids hash into distinct
  // shards with overwhelming probability across 64 pairs. Threads
  // hammer joint charges; every accepted charge must land on both
  // ledgers, every refusal on neither — the pairwise balances must
  // never diverge.
  BudgetAccountant accountant;
  constexpr size_t kPairs = 64;
  constexpr size_t kThreads = 6;
  constexpr double kEps = 0.01;
  std::vector<LedgerHandle> sessions(kPairs), policies(kPairs);
  for (size_t i = 0; i < kPairs; ++i) {
    sessions[i] =
        accountant.OpenLedger("s/" + std::to_string(i), 0.1).ValueOrDie();
    policies[i] =
        accountant.OpenLedger("p/" + std::to_string(i), 0.05).ValueOrDie();
  }
  std::atomic<size_t> unexpected{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < 40; ++round) {
        const size_t i = (t * 40 + round) % kPairs;
        const LedgerHandle pair[2] = {sessions[i], policies[i]};
        ChargeTag tag;
        tag.workload = "joint";
        const Status status = accountant.Charge(pair, 2, kEps, tag);
        if (!status.ok() && status.code() != StatusCode::kOutOfRange) {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(unexpected.load(), 0u);
  for (size_t i = 0; i < kPairs; ++i) {
    const double session_spent = 0.1 - *accountant.Remaining(sessions[i]);
    const double policy_spent = 0.05 - *accountant.Remaining(policies[i]);
    // All-or-nothing: both ledgers saw exactly the same charges.
    EXPECT_NEAR(session_spent, policy_spent, 1e-12) << "pair " << i;
    // The tighter cap admits at most floor(0.05 / 0.01) = 5 charges.
    EXPECT_LE(policy_spent, 0.05 + 1e-9);
  }
}

TEST(PolicyShards, HandlesFollowReplaceAndDieOnUnregister) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register("p", LinePolicy(8), Ramp(8), 1.0).ok());
  const PolicyHandle handle = registry.Resolve("p").ValueOrDie();
  const auto before = registry.Get(handle).ValueOrDie();
  ASSERT_TRUE(registry.Replace("p", LinePolicy(8), Ramp(8), 2.0).ok());
  // Same handle, new entry: it names the binding, not the version.
  const auto after = registry.Get(handle).ValueOrDie();
  EXPECT_GT(after->version, before->version);
  EXPECT_EQ(after->epsilon_cap, 2.0);
  ASSERT_TRUE(registry.Unregister("p").ok());
  EXPECT_EQ(registry.Get(handle).status().code(), StatusCode::kNotFound);
  // Re-register under the same name: the old handle must not alias
  // the new binding.
  ASSERT_TRUE(registry.Register("p", LinePolicy(8), Ramp(8), 3.0).ok());
  EXPECT_EQ(registry.Get(handle).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Resolve("p").ok());
}

TEST(PolicyShards, ManyPoliciesSpreadAndEnumerateAcrossShards) {
  PolicyRegistry registry;
  const size_t kCount = 4 * PolicyRegistry::kShardCount;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        registry.Register("p" + std::to_string(i), LinePolicy(8), Ramp(8), 1.0)
            .ok());
  }
  EXPECT_EQ(registry.size(), kCount);
  EXPECT_EQ(registry.Names().size(), kCount);
  for (size_t i = 0; i < kCount; i += 2) {
    ASSERT_TRUE(registry.Unregister("p" + std::to_string(i)).ok());
  }
  EXPECT_EQ(registry.size(), kCount / 2);
}

TEST(TransformCache, DropTransformedEvictsAcrossShardsOnLifecycleOps) {
  // Several θ>=2 grid policies; consecutive versions land in
  // different precompute shards. Each warm submit populates the
  // sharded transform cache; Replace/Unregister must evict exactly
  // the superseded snapshot's entries wherever they hashed to.
  QueryEngine engine(EngineOptions{/*seed=*/1, false});
  const size_t kPolicies = 6;
  for (size_t i = 0; i < kPolicies; ++i) {
    ASSERT_TRUE(engine
                    .RegisterPolicy("slab" + std::to_string(i),
                                    GridPolicy(DomainShape({8, 8}), 4),
                                    Ramp(64), 100.0)
                    .ok());
  }
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  EXPECT_EQ(engine.transform_cache_entries(), 0u);
  for (size_t i = 0; i < kPolicies; ++i) {
    QueryRequest request;
    request.session = "s";
    request.policy = "slab" + std::to_string(i);
    request.ranges =
        RangeWorkload("r", DomainShape({8, 8}), {{{0, 0}, {3, 3}}});
    request.epsilon = 0.1;
    ASSERT_TRUE(engine.Submit(request).ValueOrDie().range_fast_path);
  }
  EXPECT_EQ(engine.transform_cache_entries(), kPolicies);

  // Replace evicts the superseded version's cache entry; the next
  // submit repopulates for the new version.
  ASSERT_TRUE(engine
                  .ReplacePolicy("slab0", GridPolicy(DomainShape({8, 8}), 4),
                                 Ramp(64), 100.0)
                  .ok());
  EXPECT_EQ(engine.transform_cache_entries(), kPolicies - 1);

  // Unregister evicts too, for every remaining policy — if any shard
  // were missed, the count could not reach zero.
  for (size_t i = 0; i < kPolicies; ++i) {
    ASSERT_TRUE(engine.UnregisterPolicy("slab" + std::to_string(i)).ok());
  }
  EXPECT_EQ(engine.transform_cache_entries(), 0u);
}

TEST(TransformCache, ChurningManyPoliciesStaysUnderByteBudget) {
  // Byte-budgeted transform cache: a registry holding many θ>=2 grid
  // policies (each precompute carries an edge-domain vector) must keep
  // resident bytes under budget at every step, evicting LRU entries —
  // and an evicted policy must transparently recompute on next touch.
  constexpr size_t kBudget = 2048;
  EngineOptions options;
  options.seed = 1;
  options.transform_cache_bytes = kBudget;
  QueryEngine engine(options);
  const size_t kPolicies = 8;
  for (size_t i = 0; i < kPolicies; ++i) {
    ASSERT_TRUE(engine
                    .RegisterPolicy("slab" + std::to_string(i),
                                    GridPolicy(DomainShape({8, 8}), 4),
                                    Ramp(64), 1e6)
                    .ok());
  }
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  QueryRequest request;
  request.session = "s";
  request.ranges = RangeWorkload("r", DomainShape({8, 8}), {{{0, 0}, {3, 3}}});
  request.epsilon = 0.1;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t i = 0; i < kPolicies; ++i) {
      request.policy = "slab" + std::to_string(i);
      ASSERT_TRUE(engine.Submit(request).ValueOrDie().range_fast_path);
      EXPECT_LE(engine.transform_cache_stats().bytes, kBudget)
          << "round " << round << " policy " << i;
    }
  }
  const QueryEngine::TransformCacheStats stats =
      engine.transform_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, kPolicies);
  EXPECT_LE(stats.bytes, kBudget);
}

TEST(PlanCacheBudget, EvictionsAreSplitFromInvalidationsAndBudgetHolds) {
  EngineOptions options;
  options.seed = 1;
  // Roughly two line-policy plans' worth (approx_bytes ≈ 2.2 KB each).
  options.plan_cache_bytes = 5000;
  QueryEngine engine(options);
  const size_t kPolicies = 4;
  for (size_t i = 0; i < kPolicies; ++i) {
    ASSERT_TRUE(engine
                    .RegisterPolicy("p" + std::to_string(i), LinePolicy(32),
                                    Ramp(32), 1e6)
                    .ok());
  }
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  QueryRequest request;
  request.session = "s";
  request.workload = IdentityWorkload(32);
  request.epsilon = 0.1;
  for (size_t i = 0; i < kPolicies; ++i) {
    request.policy = "p" + std::to_string(i);
    ASSERT_TRUE(engine.Submit(request).ok());
  }
  PlanCache::Stats stats = engine.plan_cache_stats();
  // Every submit was one lookup; the invariant survives eviction.
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kPolicies));
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kPolicies));
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_LE(stats.bytes, options.plan_cache_bytes);
  EXPECT_LT(stats.entries, kPolicies);

  // Lifecycle removals count separately from budget evictions.
  const uint64_t evictions_before = stats.evictions;
  ASSERT_TRUE(engine.UnregisterPolicy("p" + std::to_string(kPolicies - 1))
                  .ok());
  stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.evictions, evictions_before);
  EXPECT_GT(stats.invalidations, 0u);
}

TEST(PlanCacheBudget, WarmSlotHitsKeepTheLookupInvariant) {
  // hits + misses == lookups must hold across the snapshot-slot fast
  // path too (RecordHit), with and without a byte budget.
  for (const size_t budget : {size_t{0}, size_t{100000}}) {
    EngineOptions options;
    options.seed = 1;
    options.plan_cache_bytes = budget;
    QueryEngine engine(options);
    ASSERT_TRUE(
        engine.RegisterPolicy("p", LinePolicy(16), Ramp(16), 1e6).ok());
    ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
    QueryRequest request;
    request.session = "s";
    request.policy = "p";
    request.workload = IdentityWorkload(16);
    request.epsilon = 0.1;
    const size_t kSubmits = 5;
    for (size_t i = 0; i < kSubmits; ++i) {
      ASSERT_TRUE(engine.Submit(request).ok());
    }
    const PlanCache::Stats stats = engine.plan_cache_stats();
    EXPECT_EQ(stats.hits + stats.misses, kSubmits);
    EXPECT_EQ(stats.misses, 1u);
  }
}

TEST(TransformCache, DensePrecomputesEvictWithTheirSnapshot) {
  QueryEngine engine(EngineOptions{/*seed=*/1, false});
  ASSERT_TRUE(
      engine.RegisterPolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  ASSERT_TRUE(engine.OpenSession("s", 1e6).ok());
  QueryRequest request;
  request.session = "s";
  request.policy = "line";
  request.workload = IdentityWorkload(16);
  request.epsilon = 0.1;
  ASSERT_TRUE(engine.Submit(request).ok());
  EXPECT_EQ(engine.transform_cache_entries(), 1u);
  ASSERT_TRUE(
      engine.ReplacePolicy("line", LinePolicy(16), Ramp(16), 100.0).ok());
  EXPECT_EQ(engine.transform_cache_entries(), 0u);
  ASSERT_TRUE(engine.Submit(request).ok());
  EXPECT_EQ(engine.transform_cache_entries(), 1u);
  ASSERT_TRUE(engine.UnregisterPolicy("line").ok());
  EXPECT_EQ(engine.transform_cache_entries(), 0u);
}

}  // namespace
}  // namespace blowfish
