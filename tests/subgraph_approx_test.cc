// Subgraph approximation (Lemma 4.5): spanner builders and stretch
// certification.

#include <gtest/gtest.h>

#include "core/subgraph_approx.h"
#include "graph/algorithms.h"

namespace blowfish {
namespace {

TEST(LineSpanner, MatchesFigure6Structure) {
  // H³_9 (0-based): reds at 2, 5, 8; non-reds hang off the next red.
  const LineSpanner s = BuildLineThetaSpanner(9, 3);
  EXPECT_TRUE(IsTree(s.graph));
  EXPECT_EQ(s.graph.num_edges(), 8u);
  EXPECT_TRUE(s.graph.HasEdge(0, 2));
  EXPECT_TRUE(s.graph.HasEdge(1, 2));
  EXPECT_TRUE(s.graph.HasEdge(2, 5));  // red-red path
  EXPECT_TRUE(s.graph.HasEdge(3, 5));
  EXPECT_TRUE(s.graph.HasEdge(5, 8));
  EXPECT_FALSE(s.graph.HasEdge(0, 1));
  // Groups: first group has θ-1 = 2 edges; others θ = 3.
  ASSERT_EQ(s.group_ends.size(), 3u);
  EXPECT_EQ(s.group_ends[0], 2u);
  EXPECT_EQ(s.group_ends[1], 5u);
  EXPECT_EQ(s.group_ends[2], 8u);
}

TEST(LineSpanner, ThetaOneIsLineGraph) {
  const LineSpanner s = BuildLineThetaSpanner(6, 1);
  EXPECT_TRUE(IsTree(s.graph));
  for (size_t i = 0; i + 1 < 6; ++i) EXPECT_TRUE(s.graph.HasEdge(i, i + 1));
}

class LineSpannerStretchTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

// Section 5.3.1: every Gθ_k edge is connected in Hθ_k by a path of
// length at most 3.
TEST_P(LineSpannerStretchTest, StretchAtMostThree) {
  const auto [k, theta] = GetParam();
  const Policy g = Theta1DPolicy(k, theta);
  const SpannerCertificate cert =
      LineThetaSpannerFor(g, theta).ValueOrDie();
  EXPECT_LE(cert.stretch, 3);
  EXPECT_GE(cert.stretch, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LineSpannerStretchTest,
    ::testing::Values(std::make_pair(12u, 2u), std::make_pair(12u, 3u),
                      std::make_pair(16u, 4u), std::make_pair(64u, 4u),
                      std::make_pair(64u, 8u), std::make_pair(128u, 16u)),
    [](const auto& param_info) {
      return "k" + std::to_string(param_info.param.first) + "_t" +
             std::to_string(param_info.param.second);
    });

TEST(LineSpanner, RequiresDivisibility) {
  EXPECT_FALSE(LineThetaSpannerFor(Theta1DPolicy(10, 3), 3).ok());
}

TEST(GridSpanner, StructureFigure7) {
  // 6x6 grid, block 2: reds at odd coordinates.
  const DomainShape domain({6, 6});
  const GridSpanner s = BuildGridThetaSpanner(domain, 2);
  // Each non-red vertex has exactly one internal edge.
  size_t internal = 0;
  for (size_t u = 0; u < 36; ++u) {
    if (s.red_of[u] == u) {
      EXPECT_EQ(s.internal_edge[u], SIZE_MAX);
    } else {
      ASSERT_NE(s.internal_edge[u], SIZE_MAX);
      ++internal;
    }
  }
  EXPECT_EQ(internal, 36u - 9u);  // 9 red corners
  // External edges: red 3x3 grid -> 2*3*2 = 12 edges.
  EXPECT_EQ(s.graph.num_edges(), internal + 12u);
  EXPECT_TRUE(IsConnected(s.graph));
}

TEST(GridSpanner, BlockOneMakesAllRed) {
  const DomainShape domain({4, 4});
  const GridSpanner s = BuildGridThetaSpanner(domain, 1);
  for (size_t u = 0; u < 16; ++u) EXPECT_EQ(s.red_of[u], u);
  // Pure red grid = unit grid graph.
  EXPECT_EQ(s.graph.num_edges(), 2u * 4 * 3);
}

class GridSpannerStretchTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

// The certified stretch for Gθ over a 2D grid with block θ/2 is a
// small constant (used with budget ε/stretch in Theorem 5.6's
// mechanism).
TEST_P(GridSpannerStretchTest, StretchSmallAndStable) {
  const auto [k, theta] = GetParam();
  const size_t block = std::max<size_t>(1, theta / 2);
  if (k % block != 0) GTEST_SKIP();
  const DomainShape domain({k, k});
  const Graph g = DistanceThresholdGraph(domain, theta);
  const GridSpanner h = BuildGridThetaSpanner(domain, block);
  const int64_t stretch = MaxEdgeStretch(g, h.graph);
  ASSERT_GT(stretch, 0);
  EXPECT_LE(stretch, 8);

  // Translation invariance: the stretch at a larger grid of the same
  // block structure matches (this justifies certifying on a small
  // representative inside GridThetaRangeMechanism).
  const size_t k2 = k * 2;
  const DomainShape domain2({k2, k2});
  const Graph g2 = DistanceThresholdGraph(domain2, theta);
  const GridSpanner h2 = BuildGridThetaSpanner(domain2, block);
  EXPECT_EQ(MaxEdgeStretch(g2, h2.graph), stretch);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GridSpannerStretchTest,
    ::testing::Values(std::make_pair(8u, 2u), std::make_pair(8u, 3u),
                      std::make_pair(8u, 4u), std::make_pair(12u, 6u)),
    [](const auto& param_info) {
      return "k" + std::to_string(param_info.param.first) + "_t" +
             std::to_string(param_info.param.second);
    });

TEST(Certify, RejectsDisconnectedSpanner) {
  Policy g = Theta1DPolicy(6, 2);
  Graph h(6);
  h.AddEdge(0, 1);  // misses most vertices
  EXPECT_FALSE(
      CertifySpanner(g, Policy{"bad", DomainShape({6}), h}).ok());
}

TEST(Certify, IdenticalGraphHasStretchOne)
{
  Policy g = Theta1DPolicy(6, 2);
  const SpannerCertificate cert = CertifySpanner(g, g).ValueOrDie();
  EXPECT_EQ(cert.stretch, 1);
}

}  // namespace
}  // namespace blowfish
