#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace blowfish {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyVectorAndTranspose) {
  Matrix a{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}};
  const Vector x{1.0, 1.0, 1.0};
  EXPECT_EQ(a.MultiplyVector(x), (Vector{3.0, 3.0}));
  EXPECT_EQ(a.TransposeMultiplyVector({1.0, 1.0}), (Vector{1.0, 3.0, 2.0}));
  const Matrix at = a.Transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 0), 2.0);
}

TEST(Matrix, GramMatricesMatchExplicitProducts) {
  Rng rng(3);
  Matrix a(4, 6);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 6; ++j) a(i, j) = rng.Normal();
  const Matrix gc = a.GramColumns();
  const Matrix gr = a.GramRows();
  EXPECT_LT(gc.MaxAbsDiff(a.Transpose().Multiply(a)), 1e-12);
  EXPECT_LT(gr.MaxAbsDiff(a.Multiply(a.Transpose())), 1e-12);
}

TEST(Matrix, ColumnL1AndSensitivity) {
  // The L1 sensitivity of a workload is its max column L1 norm
  // (Definition 2.3; Example 2.2: ∆I_k = 1, ∆C_k = k).
  Matrix ident = Matrix::Identity(5);
  EXPECT_DOUBLE_EQ(ident.MaxColumnL1(), 1.0);
  Matrix cumulative(5, 5);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j <= i; ++j) cumulative(i, j) = 1.0;
  EXPECT_DOUBLE_EQ(cumulative.MaxColumnL1(), 5.0);
  EXPECT_DOUBLE_EQ(cumulative.ColumnL1(4), 1.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(Matrix, AddSubScaleRowMaxAbsDiff) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{0.5, -1.0}};
  EXPECT_DOUBLE_EQ(a.Add(b)(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.Sub(b)(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(a.Scale(-2.0)(0, 0), -2.0);
  EXPECT_EQ(a.Row(0), (Vector{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 3.0);
}

TEST(MatrixDeath, DimensionChecks) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH(a.Multiply(b), "CHECK failed");
  EXPECT_DEATH(a.MultiplyVector({1.0}), "CHECK failed");
}

}  // namespace
}  // namespace blowfish
