// Gaussian mechanism and the Appendix A (ε, δ)-Blowfish extension:
// any (ε, δ)-DP histogram mechanism plugged into the tree transform is
// an (ε, δ, G)-Blowfish mechanism.

#include <cmath>

#include <gtest/gtest.h>

#include "core/mechanisms_1d.h"
#include "mech/error.h"
#include "mech/gaussian.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(Gaussian, SigmaCalibration) {
  const GaussianMechanism mech(0.001);
  // sigma = sqrt(2 ln(1.25/delta)) / eps.
  EXPECT_NEAR(mech.Sigma(0.5), std::sqrt(2.0 * std::log(1250.0)) / 0.5,
              1e-12);
  EXPECT_LT(mech.Sigma(0.9), mech.Sigma(0.1));
}

TEST(Gaussian, NoiseMomentsMatchSigma) {
  const GaussianMechanism mech(0.01);
  const double eps = 0.5;
  const double sigma = mech.Sigma(eps);
  Vector x(8, 100.0);
  Rng rng(1);
  double sum = 0.0, sum_sq = 0.0;
  const size_t trials = 20000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech.Run(x, eps, &rng);
    for (double v : est) {
      sum += v - 100.0;
      sum_sq += (v - 100.0) * (v - 100.0);
    }
  }
  const double n = static_cast<double>(trials * x.size());
  EXPECT_NEAR(sum / n, 0.0, 0.2);
  EXPECT_NEAR(sum_sq / n, sigma * sigma, 0.05 * sigma * sigma);
}

TEST(Gaussian, PlugsIntoTreeTransform) {
  // (ε, δ, G¹_k)-Blowfish release via Theorem 4.3 + Appendix A.
  const size_t k = 64;
  auto mech = TreeTransformMechanism::Create(
                  LinePolicy(k), std::make_shared<GaussianMechanism>(1e-6))
                  .ValueOrDie();
  Vector x(k, 2.0);
  Rng rng(2);
  const Vector est = mech->Run(x, 0.5, &rng);
  ASSERT_EQ(est.size(), k);
  // Releases still preserve the public total exactly.
  EXPECT_NEAR(Sum(est), Sum(x), 1e-6);
}

TEST(Gaussian, GaussianBeatsLaplaceForLongPrefixWorkloads) {
  // On the transformed (prefix) domain, the L2-calibrated Gaussian is
  // the natural choice when delta is tolerable; sanity: both variants
  // are unbiased and in the same error ballpark.
  const size_t k = 256;
  const DomainShape domain({k});
  const RangeWorkload w = HistogramRanges(domain);
  Vector x(k, 1.0);
  auto gaussian = TreeTransformMechanism::Create(
                      LinePolicy(k), std::make_shared<GaussianMechanism>(1e-5))
                      .ValueOrDie();
  const ErrorStats stats = MeasureError(
      [&](const Vector& db, double e, Rng* rng) {
        return gaussian->Run(db, e, rng);
      },
      w, x, 0.5, 10, 3);
  // Two prefix cells per count, each with variance sigma^2.
  const double sigma = GaussianMechanism(1e-5).Sigma(0.5);
  EXPECT_NEAR(stats.mean, 2.0 * sigma * sigma, sigma * sigma);
}

TEST(GaussianDeath, RejectsInvalidParameters) {
  EXPECT_DEATH(GaussianMechanism(0.0), "CHECK failed");
  const GaussianMechanism mech(0.001);
  Rng rng(4);
  Vector x(4, 1.0);
  EXPECT_DEATH(mech.Run(x, 1.5, &rng), "eps < 1");
}

}  // namespace
}  // namespace blowfish
