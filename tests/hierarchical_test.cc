#include <gtest/gtest.h>

#include "mech/error.h"
#include "mech/hierarchical.h"
#include "mech/laplace.h"
#include "workload/builders.h"

namespace blowfish {
namespace {

TEST(Hierarchical, LevelsOfBinaryTree) {
  HierarchicalMechanism mech(2);
  EXPECT_EQ(mech.NumLevels(1), 1u);
  EXPECT_EQ(mech.NumLevels(2), 2u);
  EXPECT_EQ(mech.NumLevels(8), 4u);
  EXPECT_EQ(mech.NumLevels(9), 5u);
}

TEST(Hierarchical, ExactWithoutNoise) {
  HierarchicalMechanism mech(2);
  Vector x{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  Rng rng(1);
  const Vector est = mech.Run(x, 1e9, &rng);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(est[i], x[i], 1e-4);
}

TEST(Hierarchical, UnbiasedUnderNoise) {
  HierarchicalMechanism mech(2);
  Vector x(16, 3.0);
  Rng rng(2);
  Vector mean(16, 0.0);
  const size_t trials = 3000;
  for (size_t t = 0; t < trials; ++t) {
    const Vector est = mech.Run(x, 1.0, &rng);
    for (size_t i = 0; i < 16; ++i) mean[i] += est[i] / trials;
  }
  for (size_t i = 0; i < 16; ++i) EXPECT_NEAR(mean[i], 3.0, 1.0);
}

TEST(Hierarchical, BeatsLaplaceOnLongRanges) {
  // The whole point of the tree: long ranges cost O(log³k) instead of
  // O(length).
  const size_t k = 256;
  const DomainShape domain({k});
  std::vector<RangeQuery> long_ranges;
  for (size_t i = 0; i < 50; ++i) {
    long_ranges.push_back({{i}, {k - 1 - i}});
  }
  const RangeWorkload w("long", domain, long_ranges);
  Vector x(k, 1.0);
  HierarchicalMechanism tree(2);
  LaplaceMechanism flat;
  const double eps = 1.0;
  // Enough trials that the tree-vs-flat gap (~311 vs ~415 at these
  // parameters) dominates sampling noise — squared-Laplace errors are
  // fat-tailed, and at 10 trials the comparison flips on unlucky
  // noise streams.
  const double tree_err =
      MeasureError([&](const Vector& db, double e,
                       Rng* rng) { return tree.Run(db, e, rng); },
                   w, x, eps, 400, 3)
          .mean;
  const double flat_err =
      MeasureError([&](const Vector& db, double e,
                       Rng* rng) { return flat.Run(db, e, rng); },
                   w, x, eps, 400, 3)
          .mean;
  EXPECT_LT(tree_err, flat_err);
}

TEST(Hierarchical, BranchingFactorFourWorks) {
  HierarchicalMechanism mech(4);
  Vector x{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Rng rng(4);
  const Vector est = mech.Run(x, 1e9, &rng);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(est[i], x[i], 1e-4);
}

TEST(Hierarchical, NonPowerOfTwoDomain) {
  HierarchicalMechanism mech(2);
  Vector x(13, 2.0);
  Rng rng(5);
  const Vector est = mech.Run(x, 1e9, &rng);
  ASSERT_EQ(est.size(), 13u);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(est[i], x[i], 1e-4);
}

}  // namespace
}  // namespace blowfish
